package aimotif

import (
	"fmt"
	"math"
	"math/rand"

	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// BatchNorm normalises a (N, C, H, W) tensor per channel to zero mean and
// unit variance (inference-style batch normalisation with statistics
// computed from the batch itself).
func BatchNorm(ex *sim.Exec, regs *Regions, in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("aimotif: BatchNorm expects a rank-4 tensor")
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	out := tensor.New(n, c, h, w)
	id, od := in.Data(), out.Data()
	plane := h * w
	const eps = 1e-5
	// Each channel's statistics and normalisation are independent, so the
	// channel dimension parallelises on the worker pool; the per-channel
	// accumulation order is unchanged, keeping results bit-identical.
	parallel.For(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			var sum, sq float64
			count := 0
			for b := 0; b < n; b++ {
				base := (b*c + ch) * plane
				for i := 0; i < plane; i++ {
					v := float64(id[base+i])
					sum += v
					sq += v * v
					count++
				}
			}
			mean := sum / float64(count)
			variance := sq/float64(count) - mean*mean
			if variance < 0 {
				variance = 0
			}
			inv := 1 / math.Sqrt(variance+eps)
			for b := 0; b < n; b++ {
				base := (b*c + ch) * plane
				for i := 0; i < plane; i++ {
					od[base+i] = float32((float64(id[base+i]) - mean) * inv)
				}
			}
		}
	})
	rIn, rOut := regionOf(regs, ex, in), regionOf(regs, ex, out)
	ex.Load(rIn, 0, in.Bytes())
	ex.Load(rIn, 0, in.Bytes()) // second pass for normalisation
	ex.Store(rOut, 0, out.Bytes())
	ex.Float(uint64(in.Size()) * 6)
	ex.Int(uint64(c) * 8)
	return out, nil
}

// CosineNorm scales each sample (first dimension) of the tensor to unit L2
// norm (cosine normalisation).
func CosineNorm(ex *sim.Exec, regs *Regions, in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Rank() < 2 {
		return nil, fmt.Errorf("aimotif: CosineNorm expects at least rank-2")
	}
	n := in.Dim(0)
	per := in.Size() / n
	out := tensor.New(in.Shape()...)
	id, od := in.Data(), out.Data()
	// Samples normalise independently, so the batch dimension parallelises
	// on the worker pool with bit-identical results.
	parallel.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			var sq float64
			for i := 0; i < per; i++ {
				v := float64(id[b*per+i])
				sq += v * v
			}
			inv := 1.0
			if sq > 0 {
				inv = 1 / math.Sqrt(sq)
			}
			for i := 0; i < per; i++ {
				od[b*per+i] = float32(float64(id[b*per+i]) * inv)
			}
		}
	})
	rIn, rOut := regionOf(regs, ex, in), regionOf(regs, ex, out)
	ex.Load(rIn, 0, in.Bytes())
	ex.Store(rOut, 0, out.Bytes())
	ex.Float(uint64(in.Size()) * 4)
	return out, nil
}

// Dropout zeroes a rate fraction of the elements (deterministically seeded)
// and scales the survivors by 1/(1-rate), the training-time formulation.
func Dropout(ex *sim.Exec, regs *Regions, in *tensor.Tensor, rate float64, seed int64) (*tensor.Tensor, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("aimotif: dropout rate %g outside [0,1)", rate)
	}
	rng := rand.New(rand.NewSource(seed))
	out := tensor.New(in.Shape()...)
	id, od := in.Data(), out.Data()
	scale := float32(1 / (1 - rate))
	dropped := 0
	for i, v := range id {
		if rng.Float64() < rate {
			dropped++
			continue
		}
		od[i] = v * scale
	}
	rIn, rOut := regionOf(regs, ex, in), regionOf(regs, ex, out)
	ex.Load(rIn, 0, in.Bytes())
	ex.Store(rOut, 0, out.Bytes())
	ex.Float(uint64(in.Size() - dropped))
	ex.Int(uint64(in.Size()) * 3)
	for i := 0; i < in.Size(); i += 64 {
		ex.Branch(siteAI+5, i < dropped)
	}
	return out, nil
}

// ReduceSum sums all elements of the tensor into a scalar tensor.
func ReduceSum(ex *sim.Exec, regs *Regions, in *tensor.Tensor) *tensor.Tensor {
	var sum float64
	for _, v := range in.Data() {
		sum += float64(v)
	}
	out := tensor.New()
	out.Set(float32(sum))
	ex.Load(regionOf(regs, ex, in), 0, in.Bytes())
	ex.Float(uint64(in.Size()))
	return out
}

// ReduceMax finds the maximum element of the tensor (the Sort-class AI
// motif) and returns it as a scalar tensor.
func ReduceMax(ex *sim.Exec, regs *Regions, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New()
	data := in.Data()
	if len(data) == 0 {
		return out
	}
	maxV := data[0]
	updates := 0
	for _, v := range data {
		if v > maxV {
			maxV = v
			updates++
		}
	}
	out.Set(maxV)
	ex.Load(regionOf(regs, ex, in), 0, in.Bytes())
	ex.Int(uint64(in.Size()) * 2)
	for i := 0; i < in.Size(); i += 64 {
		ex.Branch(siteAI+6, i < updates)
	}
	return out
}
