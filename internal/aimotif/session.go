package aimotif

import (
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// Session owns the per-measurement-session state of the AI kernels: the
// synthetic-address region cache, the tensor arena that recycles
// intermediate activations across steps, and the reusable scratch state the
// kernels dispatch their parallel compute phases with.  One session belongs
// to one simulated task (it is not safe for concurrent use), mirroring how
// the paper's workloads run one runtime instance per task slot.
//
// Regions are keyed by tensor ID — the identity a tensor keeps for its
// logical lifetime — rather than by Go pointer, so an arena-recycled
// backing store (fresh ID) gets a fresh region exactly like a fresh
// allocation would, while a long-lived tensor (weights reused every step)
// keeps hitting the same region and therefore the same cache lines.
// Releasing a tensor drops its region entry, which is what keeps the map
// bounded over a long-lived server's unbounded step count: live entries are
// only the weights plus the in-flight activations of the current step.
//
// A nil *Session is valid everywhere one is accepted: tensors come from
// plain allocation and every use of a tensor gets a fresh region.
type Session struct {
	regions map[*tensor.Tensor]sessionRegion
	arena   *tensor.Arena

	// Reusable scratch state for the kernels' parallel compute phases;
	// dispatching a *job that lives in the session keeps the hot path free
	// of per-call closure allocations.
	conv convJob
	pool poolJob
	fc   fcJob
	bn   bnJob
	cn   cnJob
}

// sessionRegion is one region-cache entry: the region plus the tensor ID it
// was allocated for.  Arena-recycled tensor headers come back with a fresh
// ID, so a lookup validates the ID and re-allocates on mismatch — exactly
// the behaviour a fresh allocation would have had — while the map's key set
// (the live tensor headers) stays stable, so the steady state neither grows
// the map nor churns its buckets.
type sessionRegion struct {
	id  uint64
	reg sim.Region
}

// NewSession returns a session whose intermediate activations are recycled
// through a tensor arena — the allocation-free steady-state configuration
// every measurement loop should use.
func NewSession() *Session {
	return &Session{regions: make(map[*tensor.Tensor]sessionRegion), arena: tensor.NewArena()}
}

// NewUnpooledSession returns a session that allocates every tensor freshly
// instead of recycling through an arena.  It exists as the reference
// configuration for the property tests proving that arena reuse is
// bit-identical — in tensor values and in simulation counters — to fresh
// allocation.
func NewUnpooledSession() *Session {
	return &Session{regions: make(map[*tensor.Tensor]sessionRegion)}
}

// NewTensor returns a zeroed tensor of the given shape: from the session's
// arena when it has one, freshly allocated otherwise (including on a nil
// session).
func (s *Session) NewTensor(shape ...int) *tensor.Tensor {
	if s == nil {
		return tensor.New(shape...)
	}
	return s.arena.New(shape...)
}

// ViewRows returns a rank-2 (rows, cols) tensor sharing src's data — the
// flatten the dense and softmax layers perform every step — recycling view
// headers through the arena when the session has one, so the steady state
// allocates nothing.  Views must be Released before their source.
func (s *Session) ViewRows(src *tensor.Tensor, rows, cols int) (*tensor.Tensor, error) {
	if s == nil {
		return src.Reshape(rows, cols)
	}
	return s.arena.ViewRows(src, rows, cols)
}

// Release hands a transient tensor back to the session.  If the tensor
// came from the session's arena its backing store is recycled and its
// region entry stays behind (the header returns with a fresh ID, which
// invalidates the entry without a map delete); an off-arena tensor has its
// region entry dropped so a long-lived session cannot accumulate entries
// for dead tensors.  Weights and other off-arena tensors pass through
// unharmed, so callers release uniformly.  Releasing the same arena tensor
// twice panics.
func (s *Session) Release(t *tensor.Tensor) {
	if s == nil || t == nil {
		return
	}
	if !t.Pooled() {
		delete(s.regions, t)
		return
	}
	s.arena.Release(t)
}

// Of returns (allocating and caching if needed) the synthetic-address
// region backing t on ex's node.  A nil session allocates a fresh region
// per use; a stale entry (the header was recycled by the arena since) is
// replaced, which is bit-identical to the fresh allocation the tensor
// would have received without pooling.
func (s *Session) Of(ex *sim.Exec, t *tensor.Tensor) sim.Region {
	if s == nil {
		return ex.Node().Alloc(t.Bytes())
	}
	if e, ok := s.regions[t]; ok && e.id == t.ID() {
		return e.reg
	}
	reg := ex.Node().Alloc(t.Bytes())
	s.regions[t] = sessionRegion{id: t.ID(), reg: reg}
	return reg
}

// CachedRegions returns the number of live region entries, exposed so tests
// can assert the map stays bounded across steps.
func (s *Session) CachedRegions() int {
	if s == nil {
		return 0
	}
	return len(s.regions)
}

// regionOf is the kernels' nil-tolerant region lookup.
func regionOf(sess *Session, ex *sim.Exec, t *tensor.Tensor) sim.Region {
	return sess.Of(ex, t)
}

// convScratch returns the session's reusable conv job, or a transient one
// for sessionless calls.
func (s *Session) convScratch() *convJob {
	if s == nil {
		return new(convJob)
	}
	return &s.conv
}

// poolScratch returns the session's reusable pooling job.
func (s *Session) poolScratch() *poolJob {
	if s == nil {
		return new(poolJob)
	}
	return &s.pool
}

// fcScratch returns the session's reusable fully-connected job.
func (s *Session) fcScratch() *fcJob {
	if s == nil {
		return new(fcJob)
	}
	return &s.fc
}

// bnScratch returns the session's reusable batch-norm job.
func (s *Session) bnScratch() *bnJob {
	if s == nil {
		return new(bnJob)
	}
	return &s.bn
}

// cnScratch returns the session's reusable cosine-norm job.
func (s *Session) cnScratch() *cnJob {
	if s == nil {
		return new(cnJob)
	}
	return &s.cn
}
