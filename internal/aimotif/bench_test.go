package aimotif

import (
	"testing"

	"dataproxy/internal/arch"
	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// benchmarkConv measures the Conv2D kernel (an AlexNet-scale layer) with
// the given host worker count; the Sequential/Parallel pair quantifies the
// kernel-level speedup of the parallel execution engine on multi-core
// hosts.
func benchmarkConv(b *testing.B, workers int) {
	b.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	in := tensor.New(8, 64, 32, 32)
	filters := tensor.New(96, 64, 3, 3)
	for i, d := 0, in.Data(); i < len(d); i++ {
		d[i] = float32(i%7) * 0.1
	}
	for i, d := 0, filters.Data(); i < len(d); i++ {
		d[i] = float32(i%5) * 0.02
	}
	cluster := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Run("conv", []sim.Task{{Node: -1, Fn: func(ex *sim.Exec) {
			if _, err := Conv2D(ex, nil, in, filters, ConvConfig{Stride: 1, Padding: 1}); err != nil {
				b.Fatal(err)
			}
		}}})
	}
}

func BenchmarkConv2DSequential(b *testing.B) { benchmarkConv(b, 1) }
func BenchmarkConv2DParallel(b *testing.B)   { benchmarkConv(b, 0) }
