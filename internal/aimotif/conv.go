// Package aimotif implements the AI data motif implementations of the paper
// (Figure 2, right column): convolution, fully-connected layers, pooling,
// element-wise operations, activations, normalisation, dropout and
// reductions, all operating on NCHW tensors and instrumented against the
// simulation engine exactly like the big data motifs.
//
// The raw operations are used directly by the dataflow (TensorFlow-like)
// substrate to build AlexNet and Inception-V3; thin wrappers register each
// operation in the shared motif registry so the AI proxy benchmarks can be
// expressed as DAGs of the same motif vocabulary.
package aimotif

import (
	"fmt"

	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// Regions caches the synthetic address region assigned to each tensor so
// repeated uses of the same tensor (weights reused every step, activations
// consumed by the next layer) exhibit cache locality in the model.  A nil
// *Regions is valid and simply allocates a fresh region per use.
type Regions struct {
	byTensor map[*tensor.Tensor]sim.Region
}

// NewRegions returns an empty region cache.
func NewRegions() *Regions {
	return &Regions{byTensor: make(map[*tensor.Tensor]sim.Region)}
}

// Of returns (allocating if needed) the region backing t on ex's node.
func (r *Regions) Of(ex *sim.Exec, t *tensor.Tensor) sim.Region {
	if r == nil || r.byTensor == nil {
		return ex.Node().Alloc(t.Bytes())
	}
	if reg, ok := r.byTensor[t]; ok {
		return reg
	}
	reg := ex.Node().Alloc(t.Bytes())
	r.byTensor[t] = reg
	return reg
}

// ConvConfig parameterises a 2-D convolution: stride and symmetric padding,
// matching the knobs the paper lists for AI data motifs (input/filter
// height, width, channel count, stride, padding algorithm).
type ConvConfig struct {
	Stride  int
	Padding int
}

const siteAI = 0x41490000 // branch-site namespace for AI motifs

// Conv2D performs a 2-D convolution of in (N, C, H, W) with filters
// (K, C, KH, KW) and returns the (N, K, OH, OW) output.  The computation is
// real and parallelised over (batch, output-channel) output planes on the
// shared worker pool — every plane is an independent output slice, so the
// result is bit-identical to sequential execution.  The instruction stream
// and memory traffic are reported to ex afterwards at output-row granularity
// (in the same deterministic order as sequential execution) to keep
// modelling overhead bounded.
func Conv2D(ex *sim.Exec, regs *Regions, in, filters *tensor.Tensor, cfg ConvConfig) (*tensor.Tensor, error) {
	if in.Rank() != 4 || filters.Rank() != 4 {
		return nil, fmt.Errorf("aimotif: Conv2D expects rank-4 input and filters, got %d and %d", in.Rank(), filters.Rank())
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	k, fc, kh, kw := filters.Dim(0), filters.Dim(1), filters.Dim(2), filters.Dim(3)
	if fc != c {
		return nil, fmt.Errorf("aimotif: Conv2D channel mismatch: input has %d, filters expect %d", c, fc)
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = 1
	}
	pad := cfg.Padding
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("aimotif: Conv2D output would be empty (%dx%d)", oh, ow)
	}
	out := tensor.New(n, k, oh, ow)
	inData, fData, oData := in.Data(), filters.Data(), out.Data()
	rIn, rF, rOut := regionOf(regs, ex, in), regionOf(regs, ex, filters), regionOf(regs, ex, out)

	// Compute phase: one independent output plane per (batch, out-channel)
	// pair, distributed over the worker pool.
	parallel.For(n*k, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			b, oc := p/k, p%k
			convPlane(inData, fData, oData, b, oc, k, c, h, w, kh, kw, oh, ow, stride, pad)
		}
	})

	// Accounting phase: report one output row at a time — the row touches
	// the filter once and a (kh x w) input window per channel.  This runs
	// sequentially so the modelled event stream is deterministic.
	for b := 0; b < n; b++ {
		for oc := 0; oc < k; oc++ {
			for oy := 0; oy < oh; oy++ {
				ex.Float(uint64(2 * ow * c * kh * kw))
				ex.Int(uint64(ow * c * kh))
				ex.Load(rF, uint64(oc*c*kh*kw)*4, uint64(c*kh*kw)*4)
				ex.Load(rIn, uint64(((b*c)*h+oy*stride)*w)*4, uint64(c*kh*w)*4)
				ex.Store(rOut, uint64(((b*k+oc)*oh+oy)*ow)*4, uint64(ow)*4)
				ex.Branch(siteAI+1, oy%2 == 0)
			}
		}
	}
	return out, nil
}

// convPlane computes one (batch, output-channel) plane of the convolution.
// The accumulation order over (ic, fy, fx) matches the original sequential
// kernel exactly, so the floating-point results are bit-identical.
func convPlane(inData, fData, oData []float32, b, oc, k, c, h, w, kh, kw, oh, ow, stride, pad int) {
	outBase := (b*k + oc) * oh * ow
	for oy := 0; oy < oh; oy++ {
		outRow := oData[outBase+oy*ow : outBase+(oy+1)*ow]
		for ox := 0; ox < ow; ox++ {
			var sum float32
			for ic := 0; ic < c; ic++ {
				fBase := ((oc*c + ic) * kh) * kw
				inPlane := (b*c + ic) * h
				for fy := 0; fy < kh; fy++ {
					iy := oy*stride + fy - pad
					if iy < 0 || iy >= h {
						continue
					}
					fRow := fData[fBase+fy*kw : fBase+(fy+1)*kw]
					inRow := inData[(inPlane+iy)*w : (inPlane+iy+1)*w]
					for fx := 0; fx < kw; fx++ {
						ix := ox*stride + fx - pad
						if ix < 0 || ix >= w {
							continue
						}
						sum += inRow[ix] * fRow[fx]
					}
				}
			}
			outRow[ox] = sum
		}
	}
}

// PoolKind selects max or average pooling.
type PoolKind int

// Pooling kinds.
const (
	MaxPool PoolKind = iota
	AvgPool
)

// Pool2D applies window pooling to in (N, C, H, W) with the given window and
// stride and returns the pooled tensor.
func Pool2D(ex *sim.Exec, regs *Regions, in *tensor.Tensor, kind PoolKind, window, stride int) (*tensor.Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("aimotif: Pool2D expects a rank-4 input, got %d", in.Rank())
	}
	if window <= 0 {
		return nil, fmt.Errorf("aimotif: Pool2D window %d must be positive", window)
	}
	if stride <= 0 {
		stride = window
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if window > h || window > w {
		return nil, fmt.Errorf("aimotif: Pool2D window %d larger than input %dx%d", window, h, w)
	}
	oh := (h-window)/stride + 1
	ow := (w-window)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("aimotif: Pool2D output would be empty")
	}
	out := tensor.New(n, c, oh, ow)
	inData, oData := in.Data(), out.Data()
	rIn, rOut := regionOf(regs, ex, in), regionOf(regs, ex, out)

	// Compute phase: one independent (batch, channel) plane per work item.
	parallel.For(n*c, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			b, ch := p/c, p%c
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var agg float32
					if kind == MaxPool {
						agg = float32(-3.4e38)
					}
					for fy := 0; fy < window; fy++ {
						for fx := 0; fx < window; fx++ {
							v := inData[((b*c+ch)*h+oy*stride+fy)*w+ox*stride+fx]
							if kind == MaxPool {
								if v > agg {
									agg = v
								}
							} else {
								agg += v
							}
						}
					}
					if kind == AvgPool {
						agg /= float32(window * window)
					}
					oData[((b*c+ch)*oh+oy)*ow+ox] = agg
				}
			}
		}
	})

	// Accounting phase, sequential and deterministic.
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				ex.Float(uint64(ow * window * window))
				ex.Int(uint64(ow * window))
				ex.Load(rIn, uint64(((b*c+ch)*h+oy*stride)*w)*4, uint64(window*w)*4)
				ex.Store(rOut, uint64(((b*c+ch)*oh+oy)*ow)*4, uint64(ow)*4)
				ex.Branch(siteAI+2, kind == MaxPool)
			}
		}
	}
	return out, nil
}

func regionOf(regs *Regions, ex *sim.Exec, t *tensor.Tensor) sim.Region {
	if regs == nil {
		return ex.Node().Alloc(t.Bytes())
	}
	return regs.Of(ex, t)
}
