// Package aimotif implements the AI data motif implementations of the paper
// (Figure 2, right column): convolution, fully-connected layers, pooling,
// element-wise operations, activations, normalisation, dropout and
// reductions, all operating on NCHW tensors and instrumented against the
// simulation engine exactly like the big data motifs.
//
// The raw operations are used directly by the dataflow (TensorFlow-like)
// substrate to build AlexNet and Inception-V3; thin wrappers register each
// operation in the shared motif registry so the AI proxy benchmarks can be
// expressed as DAGs of the same motif vocabulary.
//
// Every operation takes an optional *Session carrying the per-task region
// cache, the tensor arena that recycles intermediate activations, and the
// reusable parallel-dispatch scratch — together they make the steady state
// of a measurement loop allocation-free.  The compute inner loops are tiled
// (register-blocked outputs, hoisted index arithmetic, bounds-check-free
// row slices) but preserve the per-output floating-point accumulation order
// exactly, so tiled results are bit-identical to the naive loops and — with
// the sequential accounting passes untouched — to any worker count.
package aimotif

import (
	"fmt"

	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// ConvConfig parameterises a 2-D convolution: stride and symmetric padding,
// matching the knobs the paper lists for AI data motifs (input/filter
// height, width, channel count, stride, padding algorithm).
type ConvConfig struct {
	Stride  int
	Padding int
}

const siteAI = 0x41490000 // branch-site namespace for AI motifs

// Conv2D performs a 2-D convolution of in (N, C, H, W) with filters
// (K, C, KH, KW) and returns the (N, K, OH, OW) output.  The computation is
// real and parallelised over (batch, output-channel) output planes on the
// shared worker pool — every plane is an independent output slice, so the
// result is bit-identical to sequential execution.  The instruction stream
// and memory traffic are reported to ex afterwards at output-row granularity
// (in the same deterministic order as sequential execution) to keep
// modelling overhead bounded.
func Conv2D(ex *sim.Exec, sess *Session, in, filters *tensor.Tensor, cfg ConvConfig) (*tensor.Tensor, error) {
	if in.Rank() != 4 || filters.Rank() != 4 {
		return nil, fmt.Errorf("aimotif: Conv2D expects rank-4 input and filters, got %d and %d", in.Rank(), filters.Rank())
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	k, fc, kh, kw := filters.Dim(0), filters.Dim(1), filters.Dim(2), filters.Dim(3)
	if fc != c {
		return nil, fmt.Errorf("aimotif: Conv2D channel mismatch: input has %d, filters expect %d", c, fc)
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = 1
	}
	pad := cfg.Padding
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("aimotif: Conv2D output would be empty (%dx%d)", oh, ow)
	}
	out := sess.NewTensor(n, k, oh, ow)
	rIn, rF, rOut := regionOf(sess, ex, in), regionOf(sess, ex, filters), regionOf(sess, ex, out)

	// Compute phase: one independent output plane per (batch, out-channel)
	// pair, distributed over the worker pool.  The interior of every output
	// row — where no padding check can fire — runs register-blocked four
	// outputs at a time; within each output the (ic, fy, fx) accumulation
	// order matches the scalar path exactly, so the values are bit-identical.
	job := sess.convScratch()
	*job = convJob{
		inData: in.Data(), fData: filters.Data(), oData: out.Data(),
		k: k, c: c, h: h, w: w, kh: kh, kw: kw, oh: oh, ow: ow,
		stride: stride, pad: pad,
	}
	parallel.ForRunner(n*k, 1, job)
	*job = convJob{} // drop the tensor references so the session does not pin them

	// Accounting phase: report one output row at a time — the row touches
	// the filter once and a (kh x w) input window per channel.  This runs
	// sequentially so the modelled event stream is deterministic.
	for b := 0; b < n; b++ {
		for oc := 0; oc < k; oc++ {
			for oy := 0; oy < oh; oy++ {
				ex.Float(uint64(2 * ow * c * kh * kw))
				ex.Int(uint64(ow * c * kh))
				ex.Load(rF, uint64(oc*c*kh*kw)*4, uint64(c*kh*kw)*4)
				ex.Load(rIn, uint64(((b*c)*h+oy*stride)*w)*4, uint64(c*kh*w)*4)
				ex.Store(rOut, uint64(((b*k+oc)*oh+oy)*ow)*4, uint64(ow)*4)
				ex.Branch(siteAI+1, oy%2 == 0)
			}
		}
	}
	return out, nil
}

// convJob is the reusable dispatch state of Conv2D's compute phase: one work
// item per (batch, output-channel) plane.
type convJob struct {
	inData, fData, oData                    []float32
	k, c, h, w, kh, kw, oh, ow, stride, pad int
}

// Run implements parallel.Runner over (batch, output-channel) planes.
func (j *convJob) Run(lo, hi int) {
	for p := lo; p < hi; p++ {
		j.plane(p/j.k, p%j.k)
	}
}

// plane computes one (batch, output-channel) plane.  Each row splits into
// the padded edges (scalar path with bounds checks) and the interior, where
// every filter tap is in range by construction and four adjacent outputs
// accumulate in registers sharing each loaded filter row.
func (j *convJob) plane(b, oc int) {
	ow, stride, pad, kw, w := j.ow, j.stride, j.pad, j.kw, j.w
	// Interior outputs ox satisfy 0 <= ox*stride-pad and
	// ox*stride-pad+kw-1 < w for every tap.
	oxLo := 0
	if pad > 0 {
		oxLo = (pad + stride - 1) / stride
	}
	oxHi := (w - kw + pad) / stride
	if w-kw+pad < 0 {
		oxHi = -1
	}
	oxHi++ // exclusive
	if oxLo > ow {
		oxLo = ow
	}
	if oxHi > ow {
		oxHi = ow
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}

	outBase := (b*j.k + oc) * j.oh * ow
	for oy := 0; oy < j.oh; oy++ {
		outRow := j.oData[outBase+oy*ow : outBase+(oy+1)*ow]
		for ox := 0; ox < oxLo; ox++ {
			outRow[ox] = j.point(b, oc, oy, ox)
		}
		ox := oxLo
		for ; ox+8 <= oxHi; ox += 8 {
			j.oct(b, oc, oy, ox, outRow)
		}
		for ; ox+4 <= oxHi; ox += 4 {
			j.quad(b, oc, oy, ox, outRow)
		}
		for ; ox+2 <= oxHi; ox += 2 {
			j.pair(b, oc, oy, ox, outRow)
		}
		for ; ox < ow; ox++ {
			outRow[ox] = j.point(b, oc, oy, ox)
		}
	}
}

// fyRange returns the filter rows whose input row is in range for output
// row oy, hoisting the per-tap row check out of the channel loops.
func (j *convJob) fyRange(oy int) (int, int) {
	fyLo, fyHi := 0, j.kh
	if lo := j.pad - oy*j.stride; lo > 0 {
		fyLo = lo
	}
	if hi := j.h + j.pad - oy*j.stride; hi < fyHi {
		fyHi = hi
	}
	if fyHi < fyLo {
		fyHi = fyLo
	}
	return fyLo, fyHi
}

// oct computes outputs ox..ox+7 of one row together — the widest interior
// block, amortising each loaded filter tap over eight register
// accumulators.
func (j *convJob) oct(b, oc, oy, ox int, outRow []float32) {
	stride, kw := j.stride, j.kw
	base := ox*stride - j.pad
	span := 7*stride + kw
	fyLo, fyHi := j.fyRange(oy)
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	for ic := 0; ic < j.c; ic++ {
		fBase := ((oc*j.c + ic) * j.kh) * kw
		inPlane := (b*j.c + ic) * j.h
		for fy := fyLo; fy < fyHi; fy++ {
			iy := oy*stride + fy - j.pad
			fRow := j.fData[fBase+fy*kw : fBase+(fy+1)*kw]
			rowOff := (inPlane+iy)*j.w + base
			inRow := j.inData[rowOff : rowOff+span]
			for fx := 0; fx < kw; fx++ {
				f := fRow[fx]
				s0 += inRow[fx] * f
				s1 += inRow[fx+stride] * f
				s2 += inRow[fx+2*stride] * f
				s3 += inRow[fx+3*stride] * f
				s4 += inRow[fx+4*stride] * f
				s5 += inRow[fx+5*stride] * f
				s6 += inRow[fx+6*stride] * f
				s7 += inRow[fx+7*stride] * f
			}
		}
	}
	outRow[ox] = s0
	outRow[ox+1] = s1
	outRow[ox+2] = s2
	outRow[ox+3] = s3
	outRow[ox+4] = s4
	outRow[ox+5] = s5
	outRow[ox+6] = s6
	outRow[ox+7] = s7
}

// point computes a single output.  Instead of testing every tap against the
// input bounds, the valid (fy, fx) window is clamped up front — the padded
// taps it excludes are exactly the ones the naive kernel skipped, and the
// surviving taps accumulate in the same (ic, fy, fx) order, so the value is
// bit-identical to the naive per-tap-checked loop.
func (j *convJob) point(b, oc, oy, ox int) float32 {
	kw, stride, pad := j.kw, j.stride, j.pad
	// Valid tap ranges: 0 <= oy*stride+fy-pad < h and likewise for fx.
	fyLo, fyHi := j.fyRange(oy)
	fxLo, fxHi := 0, kw
	if lo := pad - ox*stride; lo > 0 {
		fxLo = lo
	}
	if hi := j.w + pad - ox*stride; hi < fxHi {
		fxHi = hi
	}
	if fyLo >= fyHi || fxLo >= fxHi {
		return 0
	}
	colBase := ox*stride - pad
	var sum float32
	for ic := 0; ic < j.c; ic++ {
		fBase := ((oc*j.c + ic) * j.kh) * kw
		inPlane := (b*j.c + ic) * j.h
		for fy := fyLo; fy < fyHi; fy++ {
			iy := oy*stride + fy - pad
			fRow := j.fData[fBase+fy*kw+fxLo : fBase+fy*kw+fxHi]
			inRow := j.inData[(inPlane+iy)*j.w+colBase+fxLo : (inPlane+iy)*j.w+colBase+fxHi]
			for i, f := range fRow {
				sum += inRow[i] * f
			}
		}
	}
	return sum
}

// quad computes outputs ox..ox+3 of one row together.  All four are
// interior, so the input row slice needs no per-tap bounds checks; each
// output's taps accumulate into its own register in the exact (ic, fy, fx)
// order of the scalar path.
func (j *convJob) quad(b, oc, oy, ox int, outRow []float32) {
	stride, kw := j.stride, j.kw
	base := ox*stride - j.pad
	span := 3*stride + kw // input columns covered by the four outputs
	fyLo, fyHi := j.fyRange(oy)
	var s0, s1, s2, s3 float32
	for ic := 0; ic < j.c; ic++ {
		fBase := ((oc*j.c + ic) * j.kh) * kw
		inPlane := (b*j.c + ic) * j.h
		for fy := fyLo; fy < fyHi; fy++ {
			iy := oy*stride + fy - j.pad
			fRow := j.fData[fBase+fy*kw : fBase+(fy+1)*kw]
			rowOff := (inPlane+iy)*j.w + base
			inRow := j.inData[rowOff : rowOff+span]
			for fx := 0; fx < kw; fx++ {
				f := fRow[fx]
				s0 += inRow[fx] * f
				s1 += inRow[fx+stride] * f
				s2 += inRow[fx+2*stride] * f
				s3 += inRow[fx+3*stride] * f
			}
		}
	}
	outRow[ox] = s0
	outRow[ox+1] = s1
	outRow[ox+2] = s2
	outRow[ox+3] = s3
}

// pair is quad's two-wide sibling for interior remainders, so that on small
// feature maps (the deep, channel-heavy layers) at most one output per row
// is left to the scalar path on each side.
func (j *convJob) pair(b, oc, oy, ox int, outRow []float32) {
	stride, kw := j.stride, j.kw
	base := ox*stride - j.pad
	span := stride + kw
	fyLo, fyHi := j.fyRange(oy)
	var s0, s1 float32
	for ic := 0; ic < j.c; ic++ {
		fBase := ((oc*j.c + ic) * j.kh) * kw
		inPlane := (b*j.c + ic) * j.h
		for fy := fyLo; fy < fyHi; fy++ {
			iy := oy*stride + fy - j.pad
			fRow := j.fData[fBase+fy*kw : fBase+(fy+1)*kw]
			rowOff := (inPlane+iy)*j.w + base
			inRow := j.inData[rowOff : rowOff+span]
			for fx := 0; fx < kw; fx++ {
				f := fRow[fx]
				s0 += inRow[fx] * f
				s1 += inRow[fx+stride] * f
			}
		}
	}
	outRow[ox] = s0
	outRow[ox+1] = s1
}

// PoolKind selects max or average pooling.
type PoolKind int

// Pooling kinds.
const (
	MaxPool PoolKind = iota
	AvgPool
)

// Pool2D applies window pooling to in (N, C, H, W) with the given window and
// stride and returns the pooled tensor.
func Pool2D(ex *sim.Exec, sess *Session, in *tensor.Tensor, kind PoolKind, window, stride int) (*tensor.Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("aimotif: Pool2D expects a rank-4 input, got %d", in.Rank())
	}
	if window <= 0 {
		return nil, fmt.Errorf("aimotif: Pool2D window %d must be positive", window)
	}
	if stride <= 0 {
		stride = window
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	if window > h || window > w {
		return nil, fmt.Errorf("aimotif: Pool2D window %d larger than input %dx%d", window, h, w)
	}
	oh := (h-window)/stride + 1
	ow := (w-window)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("aimotif: Pool2D output would be empty")
	}
	out := sess.NewTensor(n, c, oh, ow)
	rIn, rOut := regionOf(sess, ex, in), regionOf(sess, ex, out)

	// Compute phase: one independent (batch, channel) plane per work item.
	job := sess.poolScratch()
	*job = poolJob{
		inData: in.Data(), oData: out.Data(),
		c: c, h: h, w: w, oh: oh, ow: ow, window: window, stride: stride, kind: kind,
	}
	parallel.ForRunner(n*c, 1, job)
	*job = poolJob{}

	// Accounting phase, sequential and deterministic.
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				ex.Float(uint64(ow * window * window))
				ex.Int(uint64(ow * window))
				ex.Load(rIn, uint64(((b*c+ch)*h+oy*stride)*w)*4, uint64(window*w)*4)
				ex.Store(rOut, uint64(((b*c+ch)*oh+oy)*ow)*4, uint64(ow)*4)
				ex.Branch(siteAI+2, kind == MaxPool)
			}
		}
	}
	return out, nil
}

// poolJob is the reusable dispatch state of Pool2D's compute phase: one
// work item per (batch, channel) plane.
type poolJob struct {
	inData, oData   []float32
	c, h, w, oh, ow int
	window, stride  int
	kind            PoolKind
}

// Run implements parallel.Runner over (batch, channel) planes.
func (j *poolJob) Run(lo, hi int) {
	for p := lo; p < hi; p++ {
		b, ch := p/j.c, p%j.c
		for oy := 0; oy < j.oh; oy++ {
			for ox := 0; ox < j.ow; ox++ {
				var agg float32
				if j.kind == MaxPool {
					agg = float32(-3.4e38)
				}
				for fy := 0; fy < j.window; fy++ {
					for fx := 0; fx < j.window; fx++ {
						v := j.inData[((b*j.c+ch)*j.h+oy*j.stride+fy)*j.w+ox*j.stride+fx]
						if j.kind == MaxPool {
							if v > agg {
								agg = v
							}
						} else {
							agg += v
						}
					}
				}
				if j.kind == AvgPool {
					agg /= float32(j.window * j.window)
				}
				j.oData[((b*j.c+ch)*j.oh+oy)*j.ow+ox] = agg
			}
		}
	}
}
