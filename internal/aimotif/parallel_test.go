package aimotif

import (
	"testing"

	"dataproxy/internal/arch"
	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// The parallel kernels must be bit-identical to their sequential fallback:
// every output element is computed by the same sequence of floating-point
// operations regardless of the worker count, and the sim accounting runs in
// a deterministic sequential pass either way.  These property tests execute
// each kernel once with a single worker and once with many workers and
// require identical tensors AND identical simulation counters.

func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	fn()
}

// runKernel executes fn on a fresh single-node cluster and returns the
// resulting tensor and the node's counters.
func runKernel(t *testing.T, fn func(ex *sim.Exec) *tensor.Tensor) (*tensor.Tensor, uint64, uint64) {
	t.Helper()
	cluster := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
	var out *tensor.Tensor
	cluster.Run("kernel", []sim.Task{{Node: -1, Fn: func(ex *sim.Exec) {
		out = fn(ex)
	}}})
	cnt := cluster.Nodes()[0].Counters()
	return out, cnt.Instructions(), cnt.Cycles
}

func tensorsEqual(a, b *tensor.Tensor) bool {
	if a.Size() != b.Size() {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}

func inputTensor(dims ...int) *tensor.Tensor {
	in := tensor.New(dims...)
	d := in.Data()
	for i := range d {
		d[i] = float32((i%23)-11) * 0.13
	}
	return in
}

// compareParallelSequential runs the kernel at 1 worker and at 8 workers and
// asserts bit-identical tensors and identical sim counters.
func compareParallelSequential(t *testing.T, name string, fn func(ex *sim.Exec) *tensor.Tensor) {
	t.Helper()
	var seqOut, parOut *tensor.Tensor
	var seqInstr, parInstr, seqCycles, parCycles uint64
	withWorkers(t, 1, func() {
		seqOut, seqInstr, seqCycles = runKernel(t, fn)
	})
	withWorkers(t, 8, func() {
		parOut, parInstr, parCycles = runKernel(t, fn)
	})
	if !tensorsEqual(seqOut, parOut) {
		t.Fatalf("%s: parallel output differs from sequential output", name)
	}
	if seqInstr != parInstr || seqCycles != parCycles {
		t.Fatalf("%s: accounting diverged: %d/%d instructions, %d/%d cycles",
			name, seqInstr, parInstr, seqCycles, parCycles)
	}
}

func TestConv2DParallelMatchesSequential(t *testing.T) {
	in := inputTensor(3, 5, 13, 13)
	filters := inputTensor(7, 5, 3, 3)
	for _, cfg := range []ConvConfig{{Stride: 1, Padding: 1}, {Stride: 2, Padding: 0}} {
		cfg := cfg
		compareParallelSequential(t, "Conv2D", func(ex *sim.Exec) *tensor.Tensor {
			out, err := Conv2D(ex, nil, in, filters, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
	}
}

func TestPool2DParallelMatchesSequential(t *testing.T) {
	in := inputTensor(3, 6, 12, 12)
	for _, kind := range []PoolKind{MaxPool, AvgPool} {
		kind := kind
		compareParallelSequential(t, "Pool2D", func(ex *sim.Exec) *tensor.Tensor {
			out, err := Pool2D(ex, nil, in, kind, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
	}
}

func TestFullyConnectedParallelMatchesSequential(t *testing.T) {
	in := inputTensor(9, 31)
	weights := inputTensor(31, 17)
	bias := inputTensor(17)
	compareParallelSequential(t, "FullyConnected", func(ex *sim.Exec) *tensor.Tensor {
		out, err := FullyConnected(ex, nil, in, weights, bias)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
}

func TestBatchNormParallelMatchesSequential(t *testing.T) {
	in := inputTensor(4, 9, 7, 7)
	compareParallelSequential(t, "BatchNorm", func(ex *sim.Exec) *tensor.Tensor {
		out, err := BatchNorm(ex, nil, in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
}

func TestCosineNormParallelMatchesSequential(t *testing.T) {
	in := inputTensor(13, 29)
	compareParallelSequential(t, "CosineNorm", func(ex *sim.Exec) *tensor.Tensor {
		out, err := CosineNorm(ex, nil, in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
}
