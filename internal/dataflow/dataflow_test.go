package dataflow

import (
	"testing"

	"dataproxy/internal/aimotif"
	"dataproxy/internal/arch"
	"dataproxy/internal/datagen"
	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// tinyNet builds a small but complete CNN: conv -> relu -> pool -> dense ->
// softmax.
func tinyNet() *Network {
	return &Network{
		Name: "tiny",
		Layers: []Layer{
			NewConv("conv1", 3, 8, 3, 1, 1),
			&Activation{Label: "relu1", Act: aimotif.ReLU},
			&Pool{Label: "pool1", Kind: aimotif.MaxPool, Window: 2, Stride: 2},
			&BatchNorm{Label: "bn1"},
			NewDense("fc", 8*8*8, 10),
			&Softmax{Label: "prob"},
		},
	}
}

func tinyConfig() SessionConfig {
	return SessionConfig{
		Name:        "tiny",
		BatchSize:   32,
		TotalSteps:  400,
		SampleSteps: 1,
		SampleBatch: 2,
		Input:       datagen.ImageConfig{Seed: 3, Channels: 3, Height: 16, Width: 16},
	}
}

func TestNetworkForwardShapes(t *testing.T) {
	net := tinyNet()
	if net.ParamCount() == 0 {
		t.Fatal("network should have parameters")
	}
	c := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
	c.RunOnNode("fwd", 0, 1, func(ex *sim.Exec) {
		imgs, _ := datagen.GenerateImages(datagen.ImageConfig{Seed: 1, Count: 2, Channels: 3, Height: 16, Width: 16})
		batch := aimotif.ImagesToTensor(imgs, 3, 16, 16)
		out, err := net.Forward(ex, aimotif.NewSession(), batch)
		if err != nil {
			t.Error(err)
			return
		}
		if out.Dim(0) != 2 || out.Dim(1) != 10 {
			t.Errorf("output shape %v, want [2 10]", out.Shape())
		}
		// Softmax output rows sum to ~1.
		var sum float64
		for i := 0; i < 10; i++ {
			sum += float64(out.At(0, i))
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("softmax row sums to %g", sum)
		}
	})
}

func TestTrainEndToEnd(t *testing.T) {
	cluster := sim.MustNewCluster(sim.FiveNodeWestmere())
	res, err := Train(cluster, tinyNet(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatalf("loss should be positive, got %g", res.Loss)
	}
	if res.StepsExecuted != 4 {
		t.Fatalf("expected one sampled step per worker (4), got %d", res.StepsExecuted)
	}
	if res.Scale < 1 {
		t.Fatalf("scale %g should extrapolate", res.Scale)
	}
	if cluster.Elapsed() <= 8 {
		t.Fatal("training should advance the virtual clock beyond setup")
	}
	// Workers do FP-heavy compute; the master (parameter server) moves a lot
	// of network traffic.
	for _, w := range cluster.Workers() {
		cnt := w.Counters()
		if cnt.FloatInstrs == 0 {
			t.Fatal("worker should execute floating point work")
		}
		if err := cnt.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if cluster.Master().Counters().NetRecvBytes == 0 {
		t.Fatal("parameter server should receive gradients")
	}
	// AI workloads have near-zero disk traffic compared to their compute.
	rep := cluster.Report("tiny")
	if rep.Metrics.FloatRatio < 0.1 {
		t.Fatalf("AI workload float ratio %g should be substantial", rep.Metrics.FloatRatio)
	}
}

func TestTrainValidation(t *testing.T) {
	cluster := sim.MustNewCluster(sim.FiveNodeWestmere())
	if _, err := Train(cluster, nil, tinyConfig()); err == nil {
		t.Fatal("nil network should be rejected")
	}
	cfg := tinyConfig()
	cfg.BatchSize = 0
	if _, err := Train(cluster, tinyNet(), cfg); err == nil {
		t.Fatal("zero batch size should be rejected")
	}
	cfg = tinyConfig()
	cfg.SampleSteps = 0
	if _, err := Train(cluster, tinyNet(), cfg); err == nil {
		t.Fatal("zero sample steps should be rejected")
	}
	cfg = tinyConfig()
	cfg.Input.Channels = 0
	if _, err := Train(cluster, tinyNet(), cfg); err == nil {
		t.Fatal("invalid input config should be rejected")
	}
}

func TestTrainMoreStepsTakeLonger(t *testing.T) {
	short := sim.MustNewCluster(sim.FiveNodeWestmere())
	cfgShort := tinyConfig()
	cfgShort.TotalSteps = 100
	if _, err := Train(short, tinyNet(), cfgShort); err != nil {
		t.Fatal(err)
	}
	long := sim.MustNewCluster(sim.FiveNodeWestmere())
	cfgLong := tinyConfig()
	cfgLong.TotalSteps = 1000
	if _, err := Train(long, tinyNet(), cfgLong); err != nil {
		t.Fatal(err)
	}
	if long.Elapsed() <= short.Elapsed() {
		t.Fatalf("10x steps should take longer (%g vs %g)", long.Elapsed(), short.Elapsed())
	}
}

func TestInceptionModuleConcatenatesChannels(t *testing.T) {
	mod := &Inception{
		Label: "mixed",
		Branches: [][]Layer{
			{NewConv("b1", 3, 4, 1, 1, 0)},
			{NewConv("b2a", 3, 2, 1, 1, 0), NewConv("b2b", 2, 6, 3, 1, 1)},
			{&Pool{Label: "b3p", Kind: aimotif.AvgPool, Window: 3, Stride: 1}, NewConv("b3", 3, 2, 1, 1, 0)},
		},
	}
	c := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
	c.RunOnNode("inception", 0, 1, func(ex *sim.Exec) {
		imgs, _ := datagen.GenerateImages(datagen.ImageConfig{Seed: 2, Count: 1, Channels: 3, Height: 12, Width: 12})
		in := aimotif.ImagesToTensor(imgs, 3, 12, 12)
		// The avg-pool branch with window 3 stride 1 shrinks H/W, so restrict
		// this test to the branches that preserve spatial size.
		mod.Branches = mod.Branches[:2]
		out, err := mod.Forward(ex, aimotif.NewSession(), in)
		if err != nil {
			t.Error(err)
			return
		}
		if out.Dim(1) != 10 {
			t.Errorf("concatenated channels = %d, want 10", out.Dim(1))
		}
	})
	if mod.ParamCount() == 0 {
		t.Fatal("inception module should have parameters")
	}
}

func TestConcatChannelsValidation(t *testing.T) {
	a := tensor.New(1, 2, 4, 4)
	b := tensor.New(1, 3, 4, 4)
	out, err := concatChannels(nil, []*tensor.Tensor{a, b})
	if err != nil || out.Dim(1) != 5 {
		t.Fatalf("concat failed: %v", err)
	}
	if _, err := concatChannels(nil, nil); err == nil {
		t.Fatal("empty concat should fail")
	}
	c := tensor.New(1, 2, 8, 8)
	if _, err := concatChannels(nil, []*tensor.Tensor{a, c}); err == nil {
		t.Fatal("mismatched spatial dims should fail")
	}
}

func TestDenseLayerValidation(t *testing.T) {
	c := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
	c.RunOnNode("dense", 0, 1, func(ex *sim.Exec) {
		d := NewDense("fc", 16, 4)
		in := tensor.New(2, 8)
		if _, err := d.Forward(ex, nil, in); err == nil {
			t.Error("dimension mismatch should be rejected")
		}
		ok := tensor.New(2, 2, 2, 4)
		if _, err := d.Forward(ex, nil, ok); err != nil {
			t.Errorf("rank-4 input should be flattened: %v", err)
		}
	})
}

func TestPoolLayerClampsWindow(t *testing.T) {
	c := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
	c.RunOnNode("pool", 0, 1, func(ex *sim.Exec) {
		p := &Pool{Label: "p", Kind: aimotif.MaxPool, Window: 8, Stride: 8}
		in := tensor.New(1, 2, 4, 4)
		out, err := p.Forward(ex, nil, in)
		if err != nil {
			t.Errorf("window should be clamped to the input size: %v", err)
			return
		}
		if out.Dim(2) != 1 || out.Dim(3) != 1 {
			t.Errorf("clamped pooling output %v", out.Shape())
		}
	})
}

func TestCrossEntropyAndLog(t *testing.T) {
	out, _ := tensor.FromData([]float32{0.9, 0.1, 0.5, 0.5}, 2, 2)
	loss := crossEntropy(out, []int{0, 1})
	if loss <= 0 {
		t.Fatalf("loss should be positive, got %g", loss)
	}
	// ln approximation sanity.
	if d := logApprox(1.0); d > 1e-6 || d < -1e-6 {
		t.Fatalf("log(1) = %g", d)
	}
	if d := logApprox(2.718281828) - 1; d > 0.01 || d < -0.01 {
		t.Fatalf("log(e) = %g, want ~1", 1+d)
	}
	if crossEntropy(tensor.New(0, 2), nil) != 0 {
		t.Fatal("empty output should give zero loss")
	}
}

func TestLayerNames(t *testing.T) {
	layers := []Layer{
		NewConv("c", 1, 1, 1, 1, 0),
		&Pool{Label: "p"},
		NewDense("d", 1, 1),
		&Activation{Label: "a"},
		&BatchNorm{Label: "b"},
		&Dropout{Label: "dr"},
		&Softmax{Label: "s"},
		&Inception{Label: "i"},
	}
	for _, l := range layers {
		if l.Name() == "" {
			t.Errorf("%T has empty name", l)
		}
	}
}

// TestArenaSessionMatchesFreshAllocation proves the tensor arena is
// behaviour-neutral: a session that recycles its intermediate activations
// across steps produces bit-identical outputs AND bit-identical simulation
// counters to a session that allocates every tensor freshly, at any worker
// count.
func TestArenaSessionMatchesFreshAllocation(t *testing.T) {
	imgs, err := datagen.GenerateImages(datagen.ImageConfig{Seed: 5, Count: 2, Channels: 3, Height: 16, Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	net := tinyNet()
	const steps = 3

	run := func(workers int, pooled bool) ([]float32, uint64, uint64) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		cluster := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
		var final []float32
		cluster.RunOnNode("fwd", 0, 1, func(ex *sim.Exec) {
			sess := aimotif.NewUnpooledSession()
			if pooled {
				sess = aimotif.NewSession()
			}
			batch := aimotif.ImagesToTensor(imgs, 3, 16, 16)
			for step := 0; step < steps; step++ {
				out, err := net.Forward(ex, sess, batch)
				if err != nil {
					t.Error(err)
					return
				}
				final = append(final[:0], out.Data()...)
				sess.Release(out)
			}
		})
		cnt := cluster.Nodes()[0].Counters()
		return final, cnt.Instructions(), cnt.Cycles
	}

	wantOut, wantInstr, wantCycles := run(1, false)
	for _, workers := range []int{1, 8} {
		for _, pooled := range []bool{false, true} {
			out, instr, cycles := run(workers, pooled)
			if instr != wantInstr || cycles != wantCycles {
				t.Fatalf("workers=%d pooled=%v: counters diverged: %d/%d instructions, %d/%d cycles",
					workers, pooled, instr, wantInstr, cycles, wantCycles)
			}
			if len(out) != len(wantOut) {
				t.Fatalf("workers=%d pooled=%v: output size diverged", workers, pooled)
			}
			for i := range out {
				if out[i] != wantOut[i] {
					t.Fatalf("workers=%d pooled=%v: output[%d] = %g, want %g", workers, pooled, i, out[i], wantOut[i])
				}
			}
		}
	}
}
