// Package dataflow is the TensorFlow-like substrate the "real" AI workloads
// of the paper run on: a layer/graph abstraction over the AI data motif
// operations, executed step-by-step under a parameter-server distribution
// model across the simulated cluster.  Forward computation is real (on
// synthetic image batches); the backward pass and parameter-server traffic
// are modelled, and sampled steps are extrapolated to the configured step
// count.
package dataflow

import (
	"fmt"

	"dataproxy/internal/aimotif"
	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// Layer is one node of the network graph.
type Layer interface {
	// Name identifies the layer.
	Name() string
	// Forward runs the layer on the input activation tensor.
	Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error)
	// ParamCount returns the number of trainable parameters, which drives
	// the parameter-server traffic and the update cost.
	ParamCount() int
}

// Conv is a convolutional layer.
type Conv struct {
	Label   string
	Filters *tensor.Tensor // (K, C, KH, KW)
	Stride  int
	Padding int
}

// NewConv builds a convolution layer with deterministic filter weights.
func NewConv(label string, inChannels, outChannels, kernel, stride, padding int) *Conv {
	f := tensor.New(outChannels, inChannels, kernel, kernel)
	d := f.Data()
	for i := range d {
		d[i] = float32((i%13)-6) * 0.02
	}
	return &Conv{Label: label, Filters: f, Stride: stride, Padding: padding}
}

// Name implements Layer.
func (c *Conv) Name() string { return c.Label }

// ParamCount implements Layer.
func (c *Conv) ParamCount() int { return c.Filters.Size() }

// Forward implements Layer.
func (c *Conv) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	return aimotif.Conv2D(ex, sess, in, c.Filters, aimotif.ConvConfig{Stride: c.Stride, Padding: c.Padding})
}

// Pool is a pooling layer.
type Pool struct {
	Label  string
	Kind   aimotif.PoolKind
	Window int
	Stride int
}

// Name implements Layer.
func (p *Pool) Name() string { return p.Label }

// ParamCount implements Layer.
func (p *Pool) ParamCount() int { return 0 }

// Forward implements Layer.
func (p *Pool) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	window, stride := p.Window, p.Stride
	// Clamp the window to the incoming spatial size so deep stacks on small
	// inputs (CIFAR-scale) remain valid.
	if in.Rank() == 4 {
		if h := in.Dim(2); window > h {
			window = h
		}
		if w := in.Dim(3); window > w {
			window = w
		}
	}
	return aimotif.Pool2D(ex, sess, in, p.Kind, window, stride)
}

// Dense is a fully connected layer; it flattens its input automatically.
type Dense struct {
	Label   string
	Weights *tensor.Tensor // (In, Out)
	Bias    *tensor.Tensor // (Out)
	inDim   int
	outDim  int
}

// NewDense builds a fully connected layer with deterministic weights.
func NewDense(label string, inDim, outDim int) *Dense {
	w := tensor.New(inDim, outDim)
	d := w.Data()
	for i := range d {
		d[i] = float32((i%17)-8) * 0.01
	}
	b := tensor.New(outDim)
	return &Dense{Label: label, Weights: w, Bias: b, inDim: inDim, outDim: outDim}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.Label }

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.Weights.Size() + d.Bias.Size() }

// Forward implements Layer.
func (d *Dense) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	flat := in
	if in.Rank() != 2 {
		n := in.Dim(0)
		var err error
		flat, err = sess.ViewRows(in, n, in.Size()/n)
		if err != nil {
			return nil, err
		}
	}
	if flat.Dim(1) != d.inDim {
		return nil, fmt.Errorf("dataflow: dense layer %s expects %d inputs, got %d", d.Label, d.inDim, flat.Dim(1))
	}
	out, err := aimotif.FullyConnected(ex, sess, flat, d.Weights, d.Bias)
	if flat != in {
		sess.Release(flat)
	}
	return out, err
}

// Activation applies ReLU/sigmoid/tanh element-wise.
type Activation struct {
	Label string
	Act   aimotif.Activation
}

// Name implements Layer.
func (a *Activation) Name() string { return a.Label }

// ParamCount implements Layer.
func (a *Activation) ParamCount() int { return 0 }

// Forward implements Layer.
func (a *Activation) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	return aimotif.Activate(ex, sess, in, a.Act), nil
}

// BatchNorm normalises activations per channel.
type BatchNorm struct{ Label string }

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.Label }

// ParamCount implements Layer.
func (b *BatchNorm) ParamCount() int { return 0 }

// Forward implements Layer.
func (b *BatchNorm) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Rank() != 4 {
		return aimotif.CosineNorm(ex, sess, in)
	}
	return aimotif.BatchNorm(ex, sess, in)
}

// Dropout randomly zeroes activations.
type Dropout struct {
	Label string
	Rate  float64
	Seed  int64
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.Label }

// ParamCount implements Layer.
func (d *Dropout) ParamCount() int { return 0 }

// Forward implements Layer.
func (d *Dropout) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	return aimotif.Dropout(ex, sess, in, d.Rate, d.Seed)
}

// Softmax converts class scores into probabilities.
type Softmax struct{ Label string }

// Name implements Layer.
func (s *Softmax) Name() string { return s.Label }

// ParamCount implements Layer.
func (s *Softmax) ParamCount() int { return 0 }

// Forward implements Layer.
func (s *Softmax) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	flat := in
	if in.Rank() != 2 {
		n := in.Dim(0)
		var err error
		flat, err = sess.ViewRows(in, n, in.Size()/n)
		if err != nil {
			return nil, err
		}
	}
	out, err := aimotif.Softmax(ex, sess, flat)
	if flat != in {
		sess.Release(flat)
	}
	return out, err
}

// Inception is a simplified Inception module: parallel branches whose
// outputs are concatenated along the channel dimension, the structural
// signature of Inception-V3.
type Inception struct {
	Label    string
	Branches [][]Layer
}

// Name implements Layer.
func (m *Inception) Name() string { return m.Label }

// ParamCount implements Layer.
func (m *Inception) ParamCount() int {
	total := 0
	for _, branch := range m.Branches {
		for _, l := range branch {
			total += l.ParamCount()
		}
	}
	return total
}

// Forward implements Layer: every branch processes the same input; the
// branch outputs are concatenated along channels (they must agree on N, H,
// W).  Branch intermediates are released as the branch progresses, and the
// branch outputs themselves right after the concatenation copies them.
func (m *Inception) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	var outs []*tensor.Tensor
	releaseOuts := func() {
		for _, t := range outs {
			if t != in {
				sess.Release(t)
			}
		}
	}
	for _, branch := range m.Branches {
		cur := in
		for _, l := range branch {
			next, err := l.Forward(ex, sess, cur)
			if err != nil {
				// Keep the session bounded on failure: drop the erroring
				// branch's intermediate and the completed branch outputs.
				if cur != in {
					sess.Release(cur)
				}
				releaseOuts()
				return nil, fmt.Errorf("dataflow: %s/%s: %w", m.Label, l.Name(), err)
			}
			if cur != in {
				sess.Release(cur)
			}
			cur = next
		}
		outs = append(outs, cur)
	}
	out, err := concatChannels(sess, outs)
	releaseOuts()
	return out, err
}

func concatChannels(sess *aimotif.Session, ts []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("dataflow: concat of zero tensors")
	}
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	totalC := 0
	for _, t := range ts {
		if t.Rank() != 4 || t.Dim(0) != n || t.Dim(2) != h || t.Dim(3) != w {
			return nil, fmt.Errorf("dataflow: concat shape mismatch %v vs %v", ts[0].Shape(), t.Shape())
		}
		totalC += t.Dim(1)
	}
	out := sess.NewTensor(n, totalC, h, w)
	plane := h * w
	// Each batch element copies into a disjoint slice of the output, so the
	// concatenation parallelises on the worker pool.
	parallel.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			cOff := 0
			for _, t := range ts {
				c := t.Dim(1)
				src := t.Data()[b*c*plane : (b+1)*c*plane]
				dst := out.Data()[(b*totalC+cOff)*plane : (b*totalC+cOff+c)*plane]
				copy(dst, src)
				cOff += c
			}
		}
	})
	return out, nil
}
