package dataflow

import (
	"fmt"

	"dataproxy/internal/aimotif"
	"dataproxy/internal/datagen"
	"dataproxy/internal/sim"
	"dataproxy/internal/tensor"
)

// Network is an ordered stack of layers with a name.
type Network struct {
	Name   string
	Layers []Layer
}

// ParamCount returns the total number of trainable parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.Layers {
		total += l.ParamCount()
	}
	return total
}

// Forward runs the full network on a batch, returning the output tensor.
// Intermediate activations — every layer output except the caller's input
// and the returned tensor — are released back to the session as soon as the
// next layer has consumed them, so a session with an arena runs the whole
// forward pass without allocating in steady state.  The caller owns the
// returned tensor and releases it when done.
func (n *Network) Forward(ex *sim.Exec, sess *aimotif.Session, in *tensor.Tensor) (*tensor.Tensor, error) {
	cur := in
	for _, l := range n.Layers {
		next, err := l.Forward(ex, sess, cur)
		if err != nil {
			// Release the in-flight intermediate too: a session must stay
			// bounded even when callers keep using it after failed steps.
			if cur != in {
				sess.Release(cur)
			}
			return nil, fmt.Errorf("dataflow: %s/%s: %w", n.Name, l.Name(), err)
		}
		if cur != in {
			sess.Release(cur)
		}
		cur = next
	}
	return cur, nil
}

// SessionConfig describes a distributed training run in the paper's setup:
// one parameter-server node and the remaining nodes as workers, a total step
// count split evenly across workers, and a per-step batch size.  SampleSteps
// controls how many steps are actually executed per worker; the rest are
// extrapolated.  CostScale additionally extrapolates per-step cost when the
// in-process network is a structurally faithful but numerically scaled-down
// version of the real one.
type SessionConfig struct {
	Name       string
	BatchSize  int
	TotalSteps int
	// SampleSteps is the number of steps actually executed per worker.
	SampleSteps int
	// SampleBatch is the batch size actually executed (defaults to BatchSize
	// capped at 8); the difference is folded into the extrapolation factor.
	SampleBatch int
	// CostScale multiplies the extrapolation factor to account for running a
	// reduced-width version of the real network in-process.
	CostScale float64
	// Input describes the image data set.
	Input datagen.ImageConfig
	// BackwardCostFactor is the modelled cost of the backward pass relative
	// to forward (defaults to 2.0, the usual rule of thumb).
	BackwardCostFactor float64
}

// tensorflowCodeFootprintBytes models the instruction working set of the
// TensorFlow runtime (graph executor, Eigen kernels, protobuf/RPC stack).
const tensorflowCodeFootprintBytes = 3 * 1024 * 1024

const tensorflowJumpsPer1k = 110

// Validate reports configuration errors.
func (c SessionConfig) Validate() error {
	if c.BatchSize <= 0 || c.TotalSteps <= 0 {
		return fmt.Errorf("dataflow: session %q needs positive batch size and steps", c.Name)
	}
	if c.SampleSteps <= 0 {
		return fmt.Errorf("dataflow: session %q needs at least one sampled step", c.Name)
	}
	return c.Input.Validate()
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.SampleBatch <= 0 {
		c.SampleBatch = c.BatchSize
		if c.SampleBatch > 8 {
			c.SampleBatch = 8
		}
	}
	if c.CostScale <= 0 {
		c.CostScale = 1
	}
	if c.BackwardCostFactor <= 0 {
		c.BackwardCostFactor = 2
	}
	return c
}

// Result summarises a training run.
type Result struct {
	// Loss is the sampled cross-entropy-style loss of the final executed
	// step (evidence that real computation happened).
	Loss float64
	// StepsExecuted is the number of steps actually run in-process.
	StepsExecuted int
	// Scale is the extrapolation factor applied per worker step.
	Scale float64
}

// Train runs the distributed training session on the cluster: the master
// node acts as the parameter server, every worker executes its share of the
// steps (sampled and extrapolated), exchanging gradients and parameters with
// the parameter server after every step.
//
// In host time the per-worker tasks execute concurrently (one goroutine per
// simulated node, via the cluster's parallel stage execution) and each
// task's layer forwards additionally parallelise inside the aimotif kernels
// over batch/output-channel slices; both levels share the worker pool of
// package parallel and produce bit-identical results at any worker count.
func Train(cluster *sim.Cluster, net *Network, cfg SessionConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if net == nil || len(net.Layers) == 0 {
		return Result{}, fmt.Errorf("dataflow: empty network")
	}
	workers := cluster.Config().WorkerNodes()
	if workers <= 0 {
		workers = 1
	}
	stepsPerWorker := cfg.TotalSteps / workers
	if stepsPerWorker < 1 {
		stepsPerWorker = 1
	}
	sampleSteps := cfg.SampleSteps
	if sampleSteps > stepsPerWorker {
		sampleSteps = stepsPerWorker
	}
	// Per-step extrapolation: configured batch vs sampled batch, total steps
	// vs sampled steps, and the cost of the real network vs the in-process
	// one.
	scale := float64(stepsPerWorker) / float64(sampleSteps) *
		float64(cfg.BatchSize) / float64(cfg.SampleBatch) *
		cfg.CostScale

	paramBytes := uint64(net.ParamCount()) * 4

	// Session setup: graph construction, device placement, variable init.
	cluster.AdvanceTime(cfg.Name+":setup", 6)

	var lastLoss float64
	cores := cluster.Config().Profile.TotalCores()
	tasks := make([]sim.Task, workers)
	losses := make([]float64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		tasks[w] = sim.Task{Node: -1, Scale: scale, Fn: func(ex *sim.Exec) {
			ex.SetCodeFootprint(tensorflowCodeFootprintBytes, tensorflowJumpsPer1k)
			sess := aimotif.NewSession()
			for step := 0; step < sampleSteps; step++ {
				loss, err := runStep(ex, sess, net, cfg, int64(w*1000+step), paramBytes, cfg.BackwardCostFactor)
				if err != nil {
					errs[w] = err
					return
				}
				losses[w] = loss
			}
		}}
	}
	cluster.RunStage(cfg.Name+":train", tasks, cores)
	for _, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("dataflow: session %q: %w", cfg.Name, err)
		}
	}

	// Parameter server work: apply the aggregated gradients once per step.
	psUpdates := uint64(stepsPerWorker) * uint64(workers)
	cluster.RunOnNode(cfg.Name+":parameter-server", 0, 1, func(ex *sim.Exec) {
		ex.SetCodeFootprint(tensorflowCodeFootprintBytes, tensorflowJumpsPer1k)
		// Each update streams the gradient and parameter vectors once.
		ex.NetRecv(paramBytes * psUpdates)
		ex.NetSend(paramBytes * psUpdates)
		ex.Float(uint64(net.ParamCount()) * 2 * psUpdates)
	})

	cluster.AdvanceTime(cfg.Name+":checkpoint", 2)

	for _, l := range losses {
		if l != 0 {
			lastLoss = l
		}
	}
	return Result{Loss: lastLoss, StepsExecuted: sampleSteps * workers, Scale: scale}, nil
}

// runStep executes one sampled training step: read a batch, forward pass,
// modelled backward pass, gradient exchange with the parameter server.  The
// step's batch and output are released back to the session before it
// returns, so the session's region cache stays bounded by the network size
// however many steps a long-lived server runs.
func runStep(ex *sim.Exec, sess *aimotif.Session, net *Network, cfg SessionConfig, seed int64, paramBytes uint64, backward float64) (float64, error) {
	imgCfg := cfg.Input
	imgCfg.Count = cfg.SampleBatch
	imgCfg.Seed = seed
	images, err := datagen.GenerateImages(imgCfg)
	if err != nil {
		return 0, err
	}
	batch := aimotif.ImagesToTensor(images, imgCfg.Channels, imgCfg.Height, imgCfg.Width)
	// Input pipeline: decode/augment from local data, negligible disk I/O
	// (the paper observes ~0.2-0.5 MB/s for the AI workloads).
	ex.ReadDisk(uint64(cfg.SampleBatch) * uint64(imgCfg.PixelsPerImage()))
	ex.Int(uint64(batch.Size()) * 2)

	out, err := net.Forward(ex, sess, batch)
	if err != nil {
		return 0, err
	}
	// Backward pass: modelled as an additional pass over the network's
	// parameters and activations, weighted by the backward cost factor.
	extra := uint64(float64(net.ParamCount()) * backward)
	ex.Float(extra * uint64(cfg.SampleBatch))
	actRegion := ex.Node().Alloc(uint64(net.ParamCount()) * 4)
	ex.Load(actRegion, 0, uint64(net.ParamCount())*4)
	ex.Store(actRegion, 0, uint64(net.ParamCount())*2)

	// Gradient push / parameter pull with the parameter server.
	ex.NetSend(paramBytes)
	ex.NetRecv(paramBytes)

	// Cross-entropy-style loss over the output (softmax if the last layer
	// was not one already).
	labels := datagen.Labels(seed, cfg.SampleBatch, 10)
	loss := crossEntropy(out, labels)
	sess.Release(out)
	sess.Release(batch)
	return loss, nil
}

// crossEntropy computes a simple negative-log-likelihood style loss over the
// network output; classes index modulo the output width.
func crossEntropy(out *tensor.Tensor, labels []int) float64 {
	if out.Rank() != 2 || out.Dim(0) == 0 || out.Dim(1) == 0 {
		return 0
	}
	n, c := out.Dim(0), out.Dim(1)
	var loss float64
	for b := 0; b < n && b < len(labels); b++ {
		p := float64(out.At(b, labels[b]%c))
		if p < 1e-9 {
			p = 1e-9
		}
		loss += -logApprox(p)
	}
	return loss / float64(n)
}

// logApprox is a small natural-log approximation adequate for a loss value.
func logApprox(x float64) float64 {
	// Use the identity ln(x) via math is fine, but avoid importing math for
	// one call site... simplicity wins: series around 1 is not robust, so we
	// keep precision by repeated halving.
	n := 0
	for x < 0.5 {
		x *= 2
		n++
	}
	for x > 1.5 {
		x /= 2
		n--
	}
	t := x - 1
	// 4-term Taylor series of ln(1+t).
	ln := t - t*t/2 + t*t*t/3 - t*t*t*t/4
	const ln2 = 0.6931471805599453
	return ln - float64(n)*ln2
}
