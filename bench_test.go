// Package dataproxy_bench contains one testing.B benchmark per table and
// figure of the paper's evaluation.  Each benchmark regenerates the
// corresponding result through the experiment harness and reports the
// headline number (speedup, average accuracy, bandwidth gap, ...) as a
// custom benchmark metric, so `go test -bench=. -benchmem` reproduces the
// entire evaluation in one run.
package dataproxy_bench

import (
	"testing"

	"dataproxy/internal/aimotif"
	"dataproxy/internal/arch"
	"dataproxy/internal/datagen"
	"dataproxy/internal/experiments"
	"dataproxy/internal/parallel"
	"dataproxy/internal/sim"
	"dataproxy/internal/workloads"
)

// suite is shared across benchmarks so the expensive real-workload runs are
// executed once and reused, exactly as the harness does.
var suite = experiments.NewSuite()

func BenchmarkTable3Compositions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table3()) < 100 {
			b.Fatal("Table III rendering failed")
		}
	}
}

func BenchmarkTable6RuntimeSpeedup(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.Table6()
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.Speedup
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg, "avg-speedup-x")
}

func BenchmarkTable7NewCluster(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.Table7()
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.Speedup
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg, "avg-speedup-x")
}

func BenchmarkFigure4Accuracy(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.Average
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg*100, "avg-accuracy-%")
}

func BenchmarkFigure5InstructionMix(b *testing.B) {
	var fpGap float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		var aiFP, bigFP float64
		for _, r := range rows {
			switch r.Name {
			case "Proxy AlexNet", "Proxy Inception-V3":
				aiFP += r.Float / 2
			case "Proxy TeraSort", "Proxy PageRank":
				bigFP += r.Float / 2
			}
		}
		fpGap = aiFP - bigFP
	}
	b.ReportMetric(fpGap*100, "ai-vs-bigdata-fp-gap-%")
}

func BenchmarkFigure6DiskIO(b *testing.B) {
	var teraProxy float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "TeraSort" {
				teraProxy = r.ProxyMBps
			}
		}
	}
	b.ReportMetric(teraProxy, "proxy-terasort-MBps")
}

func BenchmarkFigure7Sparsity(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := suite.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if r.SparseMemBW > 0 {
			ratio = r.DenseMemBW / r.SparseMemBW
		}
	}
	b.ReportMetric(ratio, "dense-vs-sparse-bw-ratio")
}

func BenchmarkFigure8InputData(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := suite.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		avg = (r.Sparse.Average + r.Dense.Average) / 2
	}
	b.ReportMetric(avg*100, "avg-accuracy-%")
}

func BenchmarkFigure9NewClusterAccuracy(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.Average
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg*100, "avg-accuracy-%")
}

func BenchmarkTableCrossArchAccuracy(b *testing.B) {
	var worstAvg float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.TableCrossArch()
		if err != nil {
			b.Fatal(err)
		}
		worstAvg = 1
		for _, r := range rows {
			if r.Westmere.Average < worstAvg {
				worstAvg = r.Westmere.Average
			}
			if r.Haswell.Average < worstAvg {
				worstAvg = r.Haswell.Average
			}
		}
	}
	b.ReportMetric(worstAvg*100, "worst-avg-accuracy-%")
}

func BenchmarkFigure10CrossArch(b *testing.B) {
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		rows, err := suite.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		maxDiff = 0
		for _, r := range rows {
			d := r.RealSpeedup - r.ProxySpeedup
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	b.ReportMetric(maxDiff, "max-speedup-trend-gap")
}

// benchmarkProxyStep measures the steady state of one full AlexNet proxy
// training step — the forward pass every tuner evaluation and AI workload
// measurement repeats thousands of times — on a pooled measurement session:
// a ClusterPool-recycled cluster, an arena-backed aimotif session, and the
// tiled conv/dense kernels.  All b.N steps run inside one simulated task so
// the per-op figures are the per-step marginal cost; after the first
// (warm-up) step every activation comes from the arena and the dispatch
// scratch is reused, so steady-state allocations are zero — enforced by the
// bench gate against the committed baseline.
func benchmarkProxyStep(b *testing.B, workers int) {
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	proto := sim.MustNewCluster(sim.SingleNode(arch.Westmere(), 0))
	pool := sim.NewClusterPool(proto)
	net := workloads.AlexNetNetwork()
	imgs, err := datagen.GenerateImages(datagen.ImageConfig{Seed: 1, Count: 2, Channels: 3, Height: 32, Width: 32})
	if err != nil {
		b.Fatal(err)
	}
	batch := aimotif.ImagesToTensor(imgs, 3, 32, 32)
	cluster := pool.Get()
	defer pool.Put(cluster)
	cluster.RunOnNode("steps", 0, 1, func(ex *sim.Exec) {
		sess := aimotif.NewSession()
		step := func() {
			out, err := net.Forward(ex, sess, batch)
			if err != nil {
				b.Fatal(err)
			}
			sess.Release(out)
		}
		step() // warm the arena and the region cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.StopTimer()
	})
}

// BenchmarkProxyStep tracks the AlexNet proxy step on the single-worker
// engine (the deterministic configuration the bench gate compares across
// hosts) and on the full worker pool.
func BenchmarkProxyStep(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { benchmarkProxyStep(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkProxyStep(b, 0) })
}
