module dataproxy

go 1.24
