#!/bin/sh
# lint-docs.sh fails when an exported declaration in the audited packages
# (tuner, dtree, core, perf — the auto-tuning API surface — plus serve,
# fleet, apihttp and pkg/client, the serving/fleet API surface, proxy, and
# campaign, the qualification harness) lacks a preceding doc comment.  It is
# a grep-level approximation of revive's `exported` rule so CI can enforce
# the godoc contract without external dependencies.
set -eu
cd "$(dirname "$0")/.."

status=0
for f in internal/tuner/*.go internal/dtree/*.go internal/core/*.go internal/perf/*.go internal/serve/*.go internal/proxy/*.go internal/campaign/*.go internal/fleet/*.go internal/apihttp/*.go pkg/client/*.go; do
  case "$f" in
  *_test.go) continue ;;
  esac
  out=$(awk '
    /^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
      if (prev !~ /^\/\//) print FILENAME ":" FNR ": missing doc comment: " $0
    }
    { prev = $0 }
  ' "$f")
  if [ -n "$out" ]; then
    echo "$out"
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "lint-docs: every exported symbol of the audited packages needs a doc comment (state units and defaults)."
fi
exit $status
