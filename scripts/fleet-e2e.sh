#!/bin/sh
# fleet-e2e.sh boots a real 3-replica proxyd fleet with cache gossip plus a
# proxyrouter in front, then drives it through cmd/fleetcheck (the typed
# pkg/client): smoke, a cold/warm mix with the fleet-wide no-duplicate-
# simulation assertion, a kill -9 of one replica, and a post-kill pass that
# must stay 5xx-free and fully cache-warm (gossip already spread the dead
# shard's entries).  Everything runs as local processes — no containers —
# so CI and developers exercise the same path.
set -eu
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
LOGS=$(mktemp -d)
R0=127.0.0.1:8101
R1=127.0.0.1:8102
R2=127.0.0.1:8103
ROUTER=127.0.0.1:8100
PIDS=""

cleanup() {
  for pid in $PIDS; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

fail() {
  echo "fleet-e2e: $1" >&2
  echo "--- logs ---" >&2
  tail -n 40 "$LOGS"/*.log >&2 || true
  exit 1
}

wait_ready() {
  i=0
  while ! curl -sf "http://$1/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && fail "$2 never became ready"
    sleep 0.2
  done
}

metric() { # metric <host:port> <name> -> value (0 when absent)
  curl -sf "http://$1/metrics" | awk -v n="$2" '$1 == n { print $2; found = 1 } END { if (!found) print 0 }'
}

echo "fleet-e2e: building proxyd, proxyrouter and fleetcheck"
go build -o "$BIN/proxyd" ./cmd/proxyd
go build -o "$BIN/proxyrouter" ./cmd/proxyrouter
go build -o "$BIN/fleetcheck" ./cmd/fleetcheck

echo "fleet-e2e: booting 3 gossiping replicas + router"
"$BIN/proxyd" -addr "$R0" -name s0 -peers "s1=http://$R1,s2=http://$R2" -gossip-interval 300ms >"$LOGS/s0.log" 2>&1 &
PIDS="$PIDS $!"
S1_PID=""
"$BIN/proxyd" -addr "$R1" -name s1 -peers "s0=http://$R0,s2=http://$R2" -gossip-interval 300ms >"$LOGS/s1.log" 2>&1 &
S1_PID=$!
PIDS="$PIDS $S1_PID"
"$BIN/proxyd" -addr "$R2" -name s2 -peers "s0=http://$R0,s1=http://$R1" -gossip-interval 300ms >"$LOGS/s2.log" 2>&1 &
PIDS="$PIDS $!"
wait_ready "$R0" s0
wait_ready "$R1" s1
wait_ready "$R2" s2
"$BIN/proxyrouter" -addr "$ROUTER" -probe-interval 200ms \
  -backends "s0=http://$R0,s1=http://$R1,s2=http://$R2" >"$LOGS/router.log" 2>&1 &
PIDS="$PIDS $!"
wait_ready "$ROUTER" router

N=6
"$BIN/fleetcheck" -url "http://$ROUTER" -mode smoke || fail "smoke failed"
"$BIN/fleetcheck" -url "http://$ROUTER" -mode mix -n "$N" \
  -backends "s0=http://$R0,s1=http://$R1,s2=http://$R2" || fail "mix failed"

echo "fleet-e2e: waiting for gossip to equalise the caches"
i=0
while :; do
  e0=$(metric "$R0" proxyd_result_cache_entries)
  e1=$(metric "$R1" proxyd_result_cache_entries)
  e2=$(metric "$R2" proxyd_result_cache_entries)
  [ "$e0" = "$e1" ] && [ "$e1" = "$e2" ] && [ "$e0" -ge "$N" ] && break
  i=$((i + 1))
  [ "$i" -ge 100 ] && fail "caches never converged (s0=$e0 s1=$e1 s2=$e2)"
  sleep 0.2
done
echo "fleet-e2e: all replicas hold $e0 cache entries"

echo "fleet-e2e: kill -9 replica s1"
kill -9 "$S1_PID"
i=0
while [ "$(metric "$ROUTER" 'proxyrouter_backend_healthy{backend="s1"}')" != 0 ]; do
  i=$((i + 1))
  [ "$i" -ge 100 ] && fail "router never noticed the dead replica"
  sleep 0.2
done

"$BIN/fleetcheck" -url "http://$ROUTER" -mode postkill -n "$N" \
  -backends "s0=http://$R0,s2=http://$R2" || fail "postkill failed"

echo "fleet-e2e: ok (availability after kill, zero duplicate simulations)"
