#!/bin/sh
# loadgen-soak.sh boots a real proxyd with profiling enabled, drives it for a
# few seconds of bursty zipfian traffic through cmd/loadgen, and asserts the
# serving layer behaved under load: cross-request coalescing actually engaged
# (non-zero window batches and coalesced lanes), tail latency stayed under a
# generous bound (loadgen's -max-p99 gate), and the daemon leaked no
# goroutines (the post-load count settles back to the pre-load baseline).
# The whole soak is budgeted to finish well inside a minute.
set -eu
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
LOGS=$(mktemp -d)
ADDR=127.0.0.1:8111
PPROF=127.0.0.1:8112
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

fail() {
  echo "loadgen-soak: $1" >&2
  echo "--- proxyd log ---" >&2
  tail -n 40 "$LOGS/proxyd.log" >&2 || true
  exit 1
}

goroutines() { # current live goroutine count from the pprof endpoint
  curl -sf "http://$PPROF/debug/pprof/goroutine?debug=1" | awk 'NR == 1 { print $4 }'
}

echo "loadgen-soak: building proxyd and loadgen"
go build -o "$BIN/proxyd" ./cmd/proxyd
go build -o "$BIN/loadgen" ./cmd/loadgen

# A visible collection window (25ms) makes coalescing easy to hit even with
# loadgen's modest burst sizes; request logging exercises the slog path.
echo "loadgen-soak: booting proxyd"
"$BIN/proxyd" -addr "$ADDR" -pprof "$PPROF" -coalesce-window 25ms \
  -log-level info >"$LOGS/proxyd.log" 2>&1 &
PID=$!
i=0
while ! curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -ge 100 ] && fail "proxyd never became ready"
  sleep 0.2
done

BASE_GOROUTINES=$(goroutines)
[ -n "$BASE_GOROUTINES" ] || fail "could not read the goroutine baseline"
echo "loadgen-soak: baseline goroutines: $BASE_GOROUTINES"

# Drive 12s of bursty traffic: 8-wide bursts over 3 trace groups so cold
# windows fill with coalescible lanes.  The p99 bound is deliberately
# generous — it guards against pathological stalls (a hung window, a lost
# waiter), not against a slow CI host.
echo "loadgen-soak: driving load"
LOADGEN_METRICS_OUT="$LOGS/deltas.txt" "$BIN/loadgen" -url "http://$ADDR" \
  -duration 12s -burst 8 -gap 5ms -groups 3 -per-group 4 \
  -max-p99 10s || fail "loadgen run failed (or p99 exceeded the bound)"
cat "$LOGS/deltas.txt"

delta() { awk -v n="$1" '$1 == n { print $2 }' "$LOGS/deltas.txt"; }
WINDOW_BATCHES=$(delta window_batches)
COALESCED=$(delta coalesced)
awk "BEGIN { exit !($WINDOW_BATCHES > 0) }" \
  || fail "no coalesced window batches were executed (window_batches=$WINDOW_BATCHES)"
awk "BEGIN { exit !($COALESCED > 0) }" \
  || fail "no request was served coalesced (coalesced=$COALESCED)"

# Goroutine hygiene: once the load stops, the count must settle back to the
# baseline (plus a small allowance for idle HTTP keep-alive churn).  Retry
# briefly — in-flight handlers need a moment to wind down.
i=0
while :; do
  NOW_GOROUTINES=$(goroutines)
  [ "$NOW_GOROUTINES" -le $((BASE_GOROUTINES + 2)) ] && break
  i=$((i + 1))
  [ "$i" -ge 50 ] && fail "goroutines grew from $BASE_GOROUTINES to $NOW_GOROUTINES after load"
  sleep 0.2
done
echo "loadgen-soak: goroutines settled at $NOW_GOROUTINES (baseline $BASE_GOROUTINES)"

# The slog satellite: the request log must carry structured lines.
grep -q 'msg=request' "$LOGS/proxyd.log" || fail "request log has no structured lines"

echo "loadgen-soak: ok (coalescing engaged, p99 bounded, no goroutine growth)"
