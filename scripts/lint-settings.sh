#!/bin/sh
# lint-settings.sh fails when a core.Setting literal in the non-test sources
# keys a parameter that is not in core.ParameterNames: such a key would pass
# compilation (Setting is a map) but fail Setting.Validate at runtime — or
# worse, silently tune nothing if validation is skipped.  The valid name list
# is extracted from internal/core/params.go so the check can never drift from
# the code.
set -eu
cd "$(dirname "$0")/.."

params=$(awk '/^var ParameterNames = /,/^}/' internal/core/params.go |
  grep -o '"[a-zA-Z]*"' | tr -d '"' | tr '\n' ' ')
if [ -z "$params" ]; then
  echo "lint-settings: could not extract ParameterNames from internal/core/params.go" >&2
  exit 1
fi

status=0
for f in $(find cmd internal -name '*.go' ! -name '*_test.go' | sort); do
  occurrences=$(awk '
    # scan prints every "key": occurrence of the line fragment.
    function scan(line) {
      while (match(line, /"[a-zA-Z_][a-zA-Z0-9_]*"[[:space:]]*:/)) {
        key = substr(line, RSTART, RLENGTH)
        gsub(/["[:space:]:]/, "", key)
        print FILENAME ":" FNR ":" key
        line = substr(line, RSTART + RLENGTH)
      }
    }
    {
      line = $0
      if (depth == 0) {
        # A Setting literal opens here: (core.)Setting{ or []core.Setting{.
        if (!match(line, /(^|[^A-Za-z0-9_.])(core\.)?Setting\{/)) next
        line = substr(line, RSTART)
        line = substr(line, index(line, "{"))
      }
      scan(line)
      opens = gsub(/\{/, "{", line)
      closes = gsub(/\}/, "}", line)
      depth += opens - closes
      if (depth < 0) depth = 0
    }
  ' "$f")
  [ -n "$occurrences" ] || continue
  for occ in $occurrences; do
    key=${occ##*:}
    case " $params " in
    *" $key "*) ;;
    *)
      echo "$occ: unknown tunable parameter in Setting literal (not in core.ParameterNames)"
      status=1
      ;;
    esac
  done
done
if [ "$status" -ne 0 ]; then
  echo "lint-settings: Setting literal keys must come from core.ParameterNames (internal/core/params.go)."
fi
exit $status
