#!/bin/sh
# lint-links.sh checks that every relative markdown link in the top-level
# docs resolves to an existing file, so README/ROADMAP/docs references cannot
# rot silently.  External (http/https/mailto) links are not fetched.
set -eu
cd "$(dirname "$0")/.."

status=0
for f in README.md ROADMAP.md CHANGES.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  links=$(grep -oE '\]\([^) ]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//; s/#.*$//') || true
  for link in $links; do
    case "$link" in
    http://* | https://* | mailto:* | "") continue ;;
    esac
    if [ ! -e "$dir/$link" ] && [ ! -e "$link" ]; then
      echo "$f: broken link: $link"
      status=1
    fi
  done
done
exit $status
