#!/bin/sh
# coverage-gate.sh aggregates a Go coverage profile per package, prints the
# coverage table, and fails when total statement coverage drops below the
# floor.  The floor is set ~2% under the measured total at the time it was
# last raised, so coverage can wobble with refactors but cannot silently rot.
#
#   go test -short -covermode=atomic -coverprofile=coverage.out ./...
#   sh scripts/coverage-gate.sh coverage.out
#
# COVERAGE_FLOOR overrides the floor (a percentage, e.g. 75.0).
set -eu
cd "$(dirname "$0")/.."

profile="${1:-coverage.out}"
floor="${COVERAGE_FLOOR:-82.1}"

if [ ! -f "$profile" ]; then
  echo "coverage-gate: profile $profile not found (run: go test -short -covermode=atomic -coverprofile=$profile ./...)" >&2
  exit 1
fi

# Aggregate statements/covered statements per package (portable awk, no
# gawk extensions), sort by package name, then gate on the total.
awk '
  NR == 1 && /^mode:/ { next }
  {
    # file.go:12.3,45.6 numstmt count
    split($1, loc, ":")
    pkg = loc[1]
    sub(/\/[^\/]*$/, "", pkg)
    stmts[pkg] += $2
    if ($3 > 0) covered[pkg] += $2
  }
  END {
    for (p in stmts) printf "%s %d %d\n", p, stmts[p], covered[p] + 0
  }
' "$profile" | sort | awk -v floor="$floor" '
  BEGIN { printf "%-40s %10s %10s %8s\n", "package", "stmts", "covered", "cover" }
  {
    printf "%-40s %10d %10d %7.1f%%\n", $1, $2, $3, ($2 > 0 ? 100 * $3 / $2 : 0)
    total += $2
    totalcov += $3
  }
  END {
    pct = total > 0 ? 100 * totalcov / total : 0
    printf "%-40s %10d %10d %7.1f%%\n", "total", total, totalcov, pct
    if (pct < floor) {
      printf "coverage-gate: total coverage %.1f%% is below the floor %.1f%%\n", pct, floor
      exit 1
    }
    printf "coverage-gate: total coverage %.1f%% meets the floor %.1f%%\n", pct, floor
  }
'
