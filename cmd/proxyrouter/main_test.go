package main

import "testing"

func TestParseBackends(t *testing.T) {
	backends, err := parseBackends("s0=http://h0:8080, s1=http://h1:8080/,")
	if err != nil {
		t.Fatal(err)
	}
	if len(backends) != 2 || backends[0].Name != "s0" || backends[1].URL != "http://h1:8080" {
		t.Fatalf("parsed %+v", backends)
	}
	for _, bad := range []string{"s0", "=http://x", "s0="} {
		if _, err := parseBackends(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}
