// Command proxyrouter fronts a fleet of proxyd replicas behind the same /v1
// API a single replica serves: requests shard to their consistent-hash owner
// (so the fleet never simulates a setting twice), batches split per owner
// and rejoin in request order, tune jobs return shard-prefixed IDs that
// route their polls back, and a dead replica's keyspace fails over to its
// ring successors with no client-visible 5xx while any backend survives.
//
// Usage:
//
//	proxyrouter -backends "s0=http://h0:8080,s1=http://h1:8080,s2=http://h2:8080"
//	            [-addr :8090] [-name proxyrouter] [-vnodes 128] [-probe-interval 1s]
//	            [-log-level LEVEL]
//
// With -log-level the router writes one structured (slog) line per request
// to stderr — method, route, status, duration and the owning shard it
// forwarded to.  Levels: debug, info, warn, error.
//
// Endpoints mirror proxyd: /healthz, /readyz (200 while any backend is
// ready), /metrics (proxyrouter_* exposition), /v1/workloads, /v1/archs,
// /v1/run, /v1/tune, /v1/jobs/{id} and /v1/cluster (role "router", with
// per-backend health and keyspace share).  All errors carry the versioned
// envelope {"error":{"code":"...","message":"...","retry_after_ms":N}}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dataproxy/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proxyrouter: ")
	addr := flag.String("addr", ":8090", "listen address")
	name := flag.String("name", "", `this router's name in /v1/cluster (empty = "proxyrouter")`)
	backends := flag.String("backends", "", `proxyd replicas as comma-separated name=url pairs, e.g. "s0=http://10.0.0.1:8080,s1=http://10.0.0.2:8080"`)
	vnodes := flag.Int("vnodes", 0, "consistent-hash points per backend (0 = default 128)")
	probeInterval := flag.Duration("probe-interval", 0, "backend /readyz probe cadence (0 = default 1s)")
	logLevel := flag.String("log-level", "", "structured request logging to stderr at this level (debug|info|warn|error); empty disables")
	flag.Parse()

	backendList, err := parseBackends(*backends)
	if err != nil {
		log.Fatal(err)
	}
	var requestLog *slog.Logger
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			log.Fatalf("-log-level %q: %v", *logLevel, err)
		}
		requestLog = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	rt, err := fleet.NewRouter(fleet.Config{
		Name:          *name,
		Backends:      backendList,
		Vnodes:        *vnodes,
		ProbeInterval: *probeInterval,
		RequestLog:    requestLog,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
		defer stop()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("routing over %d backends on %s", len(backendList), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// parseBackends parses the -backends flag: comma-separated name=url pairs.
func parseBackends(spec string) ([]fleet.Backend, error) {
	if spec == "" {
		fmt.Fprintln(os.Stderr, "proxyrouter: -backends is required")
		flag.Usage()
		os.Exit(2)
	}
	var out []fleet.Backend
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("proxyrouter: -backends entry %q is not name=url", part)
		}
		out = append(out, fleet.Backend{Name: name, URL: strings.TrimRight(url, "/")})
	}
	return out, nil
}
