package main

import (
	"log/slog"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("s1=http://10.0.0.2:8080, s2=http://10.0.0.3:8080/,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].Name != "s1" || peers[1].URL != "http://10.0.0.3:8080" {
		t.Fatalf("parsed %+v", peers)
	}
	if peers, err := parsePeers(""); err != nil || peers != nil {
		t.Fatalf("empty spec: %v, %v", peers, err)
	}
	for _, bad := range []string{"s1", "=http://x", "s1="} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

func TestBuildRequestLog(t *testing.T) {
	if lg, err := buildRequestLog(""); err != nil || lg != nil {
		t.Fatalf("empty level should disable logging, got %v, %v", lg, err)
	}
	lg, err := buildRequestLog("info")
	if err != nil || lg == nil {
		t.Fatalf("info level: %v, %v", lg, err)
	}
	if !lg.Enabled(nil, slog.LevelInfo) || lg.Enabled(nil, slog.LevelDebug) {
		t.Fatal("info logger should pass info and suppress debug")
	}
	if _, err := buildRequestLog("loud"); err == nil {
		t.Fatal("unknown level should be rejected")
	}
}
