// Command proxyd is the long-running serving layer: it exposes the proxy
// benchmark library over HTTP so proxies can be executed, qualified and
// inspected repeatedly without relaunching a CLI per query.
//
// Usage:
//
//	proxyd [-addr :8080] [-inflight N] [-queue N] [-jobqueue N] [-parallel N] [-pprof addr]
//
// Endpoints:
//
//	GET  /healthz       liveness
//	GET  /metrics       request, cache and queue counters (Prometheus-style)
//	GET  /v1/workloads  servable proxy benchmarks
//	GET  /v1/archs      servable architecture profiles
//	POST /v1/run        execute a proxy: {"workload":"terasort","arch":"westmere","setting":{"dataSize":1.5}}
//	POST /v1/tune       async qualification; poll GET /v1/jobs/{id}
//
// Identical /v1/run requests coalesce through the server's result cache
// (keyed bit-exactly like the auto-tuner's memo); overload is shed with 429.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"dataproxy/internal/parallel"
	"dataproxy/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proxyd: ")
	addr := flag.String("addr", ":8080", "listen address")
	inflight := flag.Int("inflight", 0, "max concurrent proxy simulations (0 = one per host worker)")
	queue := flag.Int("queue", 0, "admission queue depth beyond the in-flight slots (0 = default 16, negative = none)")
	jobQueue := flag.Int("jobqueue", 0, "queued tune jobs before shedding (0 = default 16)")
	cache := flag.Int("cache", 0, "result-cache entries before the cache is swapped out (0 = default 4096)")
	par := flag.Int("parallel", 0, "host worker count of the shared execution engine (0 = all CPUs, 1 = sequential)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
	flag.Parse()
	parallel.SetWorkers(*par)

	// Opt-in profiling endpoint on its own listener, so production hot paths
	// can be profiled without exposing pprof on the serving address.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	srv, err := serve.New(serve.Config{
		MaxInFlight:     *inflight,
		QueueDepth:      *queue,
		JobQueueDepth:   *jobQueue,
		MaxCacheEntries: *cache,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
		defer stop()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	cfg := srv.Config()
	log.Printf("serving the proxy library on %s (workers=%d, inflight=%d, queue=%d)",
		*addr, parallel.Workers(), cfg.MaxInFlight, cfg.QueueDepth)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
