// Command proxyd is the long-running serving layer: it exposes the proxy
// benchmark library over HTTP so proxies can be executed, qualified and
// inspected repeatedly without relaunching a CLI per query.
//
// Usage:
//
//	proxyd [-addr :8080] [-inflight N] [-queue N] [-jobqueue N] [-parallel N]
//	       [-coalesce-window 2ms] [-coalesce-lanes N] [-log-level LEVEL]
//	       [-state-dir DIR] [-snapshot-interval 30s] [-shutdown-timeout 10s]
//	       [-name SHARD] [-peers name=url,...] [-gossip-interval 2s] [-gossip-batch N]
//	       [-faults SPEC] [-check-invariants] [-pprof addr]
//
// Endpoints:
//
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while restoring or draining)
//	GET  /metrics          request, cache, queue, gossip and durability counters (Prometheus-style)
//	GET  /v1/workloads     servable proxy benchmarks
//	GET  /v1/archs         servable architecture profiles
//	POST /v1/run           execute a proxy: {"workload":"terasort","arch":"westmere","setting":{"dataSize":1.5}}
//	POST /v1/tune          async qualification; poll GET /v1/jobs/{id}
//	GET  /v1/cluster       this replica's shard name and peer health
//	POST /v1/peer/entries  bounded cache-entry exchange between replicas
//
// Identical /v1/run requests coalesce through the server's result cache
// (keyed bit-exactly like the auto-tuner's memo); overload is shed with 429.
// Concurrent cold requests additionally micro-batch: settings arriving
// within -coalesce-window (default 2ms; negative disables) gather up to
// -coalesce-lanes per (architecture, benchmark) group and execute as one
// lockstep sweep — a lone request drains its window immediately, so the
// window is a worst-case latency bound, not a tax.  All /v1 errors carry the
// versioned envelope {"error":{"code":"...","message":"...","retry_after_ms":N}}.
//
// With -log-level the daemon writes one structured (slog) line per request
// to stderr — method, route, status, duration, shard and whether the run
// was coalesced.  Levels: debug, info, warn, error.
//
// With -peers the replica joins a fleet: completed result-cache entries
// gossip to the named peers in bounded batches, so a setting simulated on
// one shard becomes a warm hit everywhere (a received entry never overwrites
// a live local one).  Fleets are usually fronted by proxyrouter, which
// shards requests over replicas by the same memo key the caches use.
//
// With -state-dir the daemon is crash-safe: the result cache and job table
// are snapshotted there periodically and on SIGTERM, and restored at the
// next start — an interrupted tune job is re-enqueued and converges against
// the restored cache.  SIGTERM drains gracefully: new work is shed with 429,
// in-flight work finishes within -shutdown-timeout, then the final snapshot
// is written and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dataproxy/internal/faultinject"
	"dataproxy/internal/parallel"
	"dataproxy/internal/perf"
	"dataproxy/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proxyd: ")
	addr := flag.String("addr", ":8080", "listen address")
	inflight := flag.Int("inflight", 0, "max concurrent proxy simulations (0 = one per host worker)")
	queue := flag.Int("queue", 0, "admission queue depth beyond the in-flight slots (0 = default 16, negative = none)")
	jobQueue := flag.Int("jobqueue", 0, "queued tune jobs before shedding (0 = default 16)")
	cache := flag.Int("cache", 0, "result-cache entries before the cache is swapped out (0 = default 4096)")
	coalesceWindow := flag.Duration("coalesce-window", 0, "max wait for cross-request batching of cold runs (0 = default 2ms, negative = disabled)")
	coalesceLanes := flag.Int("coalesce-lanes", 0, "max requests per coalesced sweep (0 = default 16)")
	logLevel := flag.String("log-level", "", "structured request logging to stderr at this level (debug|info|warn|error); empty disables")
	par := flag.Int("parallel", 0, "host worker count of the shared execution engine (0 = all CPUs, 1 = sequential)")
	stateDir := flag.String("state-dir", "", "directory for crash-safe state snapshots; empty disables persistence")
	snapInterval := flag.Duration("snapshot-interval", 0, "background snapshot cadence with -state-dir (0 = default 30s)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 0, "graceful-drain budget on SIGTERM (0 = default 10s)")
	name := flag.String("name", "", `this replica's shard name, as used in peers' -peers lists (empty = "proxyd")`)
	peers := flag.String("peers", "", `gossip partners as comma-separated name=url pairs, e.g. "s1=http://10.0.0.2:8080,s2=http://10.0.0.3:8080"`)
	gossipInterval := flag.Duration("gossip-interval", 0, "cache-gossip cadence with -peers (0 = default 2s)")
	gossipBatch := flag.Int("gossip-batch", 0, "max cache entries per gossip exchange (0 = default 256)")
	faults := flag.String("faults", "", `fault-injection spec, e.g. "serve.evaluate=delay:300ms,serve.snapshot.write=error:disk full*2" (also via DATAPROXY_FAULTS)`)
	checkInvariants := flag.Bool("check-invariants", false, "validate measurement invariants on every simulation (also via DATAPROXY_INVARIANTS=1)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
	flag.Parse()
	parallel.SetWorkers(*par)
	if *checkInvariants {
		perf.SetInvariantChecks(true)
	}
	if *faults != "" {
		if err := faultinject.Configure(*faults); err != nil {
			log.Fatal(err)
		}
		log.Printf("fault injection armed: %s", *faults)
	}

	// Opt-in profiling endpoint on its own listener, so production hot paths
	// can be profiled without exposing pprof on the serving address.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	peerList, err := parsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}
	requestLog, err := buildRequestLog(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		MaxInFlight:      *inflight,
		QueueDepth:       *queue,
		JobQueueDepth:    *jobQueue,
		MaxCacheEntries:  *cache,
		CoalesceWindow:   *coalesceWindow,
		CoalesceLanes:    *coalesceLanes,
		RequestLog:       requestLog,
		StateDir:         *stateDir,
		SnapshotInterval: *snapInterval,
		ShutdownTimeout:  *shutdownTimeout,
		Name:             *name,
		Peers:            peerList,
		GossipInterval:   *gossipInterval,
		GossipBatch:      *gossipBatch,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		// Drain before closing the listener: /readyz flips to 503 and new
		// work is shed with 429 while in-flight requests can still finish and
		// be answered, then the final snapshot lands on disk.
		log.Printf("signal received; draining (budget %s)", srv.Config().ShutdownTimeout)
		if err := srv.Drain(context.Background()); err != nil {
			log.Printf("drain: %v", err)
		}
		shutdownCtx, stop := context.WithTimeout(context.Background(), srv.Config().ShutdownTimeout)
		defer stop()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	cfg := srv.Config()
	log.Printf("serving the proxy library on %s (workers=%d, inflight=%d, queue=%d, state-dir=%q)",
		*addr, parallel.Workers(), cfg.MaxInFlight, cfg.QueueDepth, cfg.StateDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// buildRequestLog resolves the -log-level flag into a stderr slog logger;
// an empty level disables request logging (nil logger).
func buildRequestLog(level string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("proxyd: -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// parsePeers parses the -peers flag: comma-separated name=url pairs.
func parsePeers(spec string) ([]serve.Peer, error) {
	if spec == "" {
		return nil, nil
	}
	var out []serve.Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("proxyd: -peers entry %q is not name=url", part)
		}
		out = append(out, serve.Peer{Name: name, URL: strings.TrimRight(url, "/")})
	}
	return out, nil
}
