// Command proxygen generates a qualified proxy benchmark for one (or all) of
// the five real workloads: it measures the real workload on the simulated
// cluster of each selected processor generation, auto-tunes the proxy
// benchmark's parameters with the decision-tree tuner until the metric
// deviations are within the threshold, and prints the resulting parameter
// setting and accuracy report.  With -arch all the proxy is qualified on
// both the Westmere and the Haswell generation concurrently (the paper's
// cross-system validation) and a per-profile accuracy matrix is printed.
//
// Usage:
//
//	proxygen -workload kmeans [-arch westmere|haswell|all] [-all]
//	         [-threshold 0.15] [-iterations 12] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"dataproxy/internal/arch"
	"dataproxy/internal/parallel"
	"dataproxy/internal/proxy"
	"dataproxy/internal/sim"
	"dataproxy/internal/tuner"
	"dataproxy/internal/workloads"
)

// qualTarget is one architecture the proxy is qualified on: the profile the
// proxy benchmark is tuned for and the cluster deployment the real workload
// is measured on (the paper's deployment of that generation).
type qualTarget struct {
	profile arch.Profile
	realCfg sim.ClusterConfig
}

func qualTargets(sel string) ([]qualTarget, error) {
	westmere := qualTarget{profile: arch.Westmere(), realCfg: sim.FiveNodeWestmere()}
	haswell := qualTarget{profile: arch.Haswell(), realCfg: sim.ThreeNodeHaswell64GB()}
	switch sel {
	case "westmere":
		return []qualTarget{westmere}, nil
	case "haswell":
		return []qualTarget{haswell}, nil
	case "all":
		return []qualTarget{westmere, haswell}, nil
	default:
		return nil, fmt.Errorf("unknown -arch %q (want westmere, haswell or all)", sel)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("proxygen: ")
	workload := flag.String("workload", "terasort", "workload to proxy: terasort, kmeans, pagerank, alexnet, inception")
	allWorkloads := flag.Bool("all", false, "generate proxies for all five workloads")
	archSel := flag.String("arch", "westmere", "architecture(s) to qualify the proxy on: westmere, haswell or all")
	threshold := flag.Float64("threshold", 0.15, "accepted per-metric deviation")
	iterations := flag.Int("iterations", 12, "maximum adjust/feedback iterations")
	par := flag.Int("parallel", 0, "host worker count of the shared execution engine (0 = all CPUs, 1 = sequential)")
	flag.Parse()
	parallel.SetWorkers(*par)

	targets, err := qualTargets(strings.ToLower(*archSel))
	if err != nil {
		log.Fatal(err)
	}
	shorts := []string{*workload}
	if *allWorkloads {
		shorts = shorts[:0]
		for _, spec := range workloads.PaperWorkloads() {
			shorts = append(shorts, spec.ShortName)
		}
	}

	opts := tuner.Options{Threshold: *threshold, MaxIterations: *iterations}
	for i, short := range shorts {
		if i > 0 {
			fmt.Println()
		}
		if err := generate(short, targets, opts); err != nil {
			log.Fatal(err)
		}
	}
}

// generate measures the real workload on every target architecture, tunes
// the proxy per architecture (concurrently, sharing one measurement memo)
// and prints the qualification results.
func generate(short string, targets []qualTarget, opts tuner.Options) error {
	spec, err := workloads.ByShortName(short)
	if err != nil {
		return err
	}
	b, err := proxy.ForWorkload(short)
	if err != nil {
		return err
	}

	// Measure the real workload once per architecture; the measurements are
	// independent and fan out over the worker pool.
	realReports := make([]sim.Report, len(targets))
	errs := make([]error, len(targets))
	parallel.For(len(targets), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			realReports[i], errs[i] = measureReal(spec, targets[i].realCfg)
		}
	})
	tuneTargets := make([]tuner.Target, len(targets))
	for i, qt := range targets {
		if errs[i] != nil {
			return errs[i]
		}
		fmt.Printf("measured %s on %s: %.0f virtual seconds\n", spec.Name, qt.realCfg.Name, realReports[i].Runtime)
		tuneTargets[i] = tuner.Target{Profile: qt.profile, Metrics: realReports[i].Metrics}
	}

	fmt.Printf("auto-tuning %s on %d architecture(s) (threshold %.0f%%, max %d iterations)...\n",
		b.Name, len(targets), opts.Threshold*100, opts.MaxIterations)
	results, err := tuner.TuneAll(b, tuneTargets, opts)
	if err != nil {
		return err
	}

	for i, r := range results {
		res := r.Result
		fmt.Printf("\n[%s]\n", r.Profile.Name)
		fmt.Printf("  simulations: %d (%d memoized), iterations: %d, converged: %v\n",
			res.Evaluations, res.MemoHits, res.Iterations, res.Converged)
		fmt.Printf("  qualified setting: %s\n", res.Setting)
		fmt.Printf("  proxy runtime: %.2f virtual seconds (speedup %.0fX over the real workload)\n",
			res.ProxyMetrics.Runtime, sim.Speedup(realReports[i].Runtime, res.ProxyMetrics.Runtime))
		if len(res.History) > 0 {
			fmt.Println("  tuning history:")
			for j, h := range res.History {
				fmt.Printf("    %2d: %-12s -> adjust %-10s to %.3f (avg accuracy %.3f)\n",
					j+1, h.Metric, h.Parameter, h.Factor, h.Average)
			}
		}
	}

	if len(results) > 1 {
		fmt.Printf("\nper-profile accuracy matrix for %s:\n%s", b.Name, tuner.FormatAccuracyMatrix(results, nil))
	} else {
		fmt.Printf("\naccuracy against %s:\n%s", spec.Name, results[0].Result.Report.String())
	}
	return nil
}

func measureReal(spec workloads.Spec, cfg sim.ClusterConfig) (sim.Report, error) {
	cluster, err := sim.NewCluster(cfg)
	if err != nil {
		return sim.Report{}, err
	}
	if err := spec.Run(cluster); err != nil {
		return sim.Report{}, err
	}
	return cluster.Report(spec.Name), nil
}
