// Command proxygen generates a qualified proxy benchmark for one of the
// five real workloads: it measures the real workload on the simulated
// five-node cluster, auto-tunes the proxy benchmark's parameters with the
// decision-tree tuner until the metric deviations are within the threshold,
// and prints the resulting parameter setting and accuracy report.
//
// Usage:
//
//	proxygen -workload kmeans [-threshold 0.15] [-iterations 12]
package main

import (
	"flag"
	"fmt"
	"log"

	"dataproxy/internal/arch"
	"dataproxy/internal/proxy"
	"dataproxy/internal/sim"
	"dataproxy/internal/tuner"
	"dataproxy/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proxygen: ")
	workload := flag.String("workload", "terasort", "workload to proxy: terasort, kmeans, pagerank, alexnet, inception")
	threshold := flag.Float64("threshold", 0.15, "accepted per-metric deviation")
	iterations := flag.Int("iterations", 12, "maximum adjust/feedback iterations")
	flag.Parse()

	spec, err := workloads.ByShortName(*workload)
	if err != nil {
		log.Fatal(err)
	}
	b, err := proxy.ForWorkload(*workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measuring %s on the five-node Westmere cluster...\n", spec.Name)
	realCluster, err := sim.NewCluster(sim.FiveNodeWestmere())
	if err != nil {
		log.Fatal(err)
	}
	if err := spec.Run(realCluster); err != nil {
		log.Fatal(err)
	}
	target := realCluster.Report(spec.Name)
	fmt.Printf("  real runtime: %.0f virtual seconds\n\n", target.Runtime)

	fmt.Printf("auto-tuning %s (threshold %.0f%%, max %d iterations)...\n", b.Name, *threshold*100, *iterations)
	proxyCluster, err := sim.NewCluster(sim.SingleNode(arch.Westmere(), 0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := tuner.Tune(proxyCluster, b, target.Metrics, tuner.Options{
		Threshold:     *threshold,
		MaxIterations: *iterations,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  evaluations: %d, iterations: %d, converged: %v\n", res.Evaluations, res.Iterations, res.Converged)
	fmt.Printf("  qualified setting: %s\n", res.Setting)
	fmt.Printf("  proxy runtime: %.2f virtual seconds (speedup %.0fX)\n",
		res.ProxyMetrics.Runtime, sim.Speedup(target.Runtime, res.ProxyMetrics.Runtime))
	fmt.Printf("\naccuracy against %s:\n%s", spec.Name, res.Report.String())
	if len(res.History) > 0 {
		fmt.Println("\ntuning history:")
		for i, h := range res.History {
			fmt.Printf("  %2d: %-12s -> adjust %-10s to %.3f (avg accuracy %.3f)\n",
				i+1, h.Metric, h.Parameter, h.Factor, h.Average)
		}
	}
}
