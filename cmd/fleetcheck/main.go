// Command fleetcheck drives a proxyd deployment — a single replica or a
// proxyrouter-fronted fleet — through the typed pkg/client and asserts the
// serving contracts hold end to end.  It is what CI boots real binaries
// against instead of hand-rolled curl pipelines.
//
// Modes:
//
//	smoke     liveness, readiness, listings, one run, and cache coalescing
//	          on the repeat — the minimum a freshly booted target must do.
//	mix       a cold batch of -n distinct settings followed by warm single
//	          runs and a warm repeat batch: request order, all-warm repeats,
//	          and (with -backends) the fleet-wide no-duplicate-simulation
//	          invariant; finishes with a fast tune job polled to completion.
//	postkill  availability after a replica was killed: the same -n settings
//	          must still answer without any 5xx, and with -backends the
//	          survivors must answer them from gossip-warmed caches without
//	          executing a single new simulation.
//
// Usage:
//
//	fleetcheck -url http://127.0.0.1:8090 -mode mix \
//	           [-backends "s0=http://...,s1=http://..."] [-n 6] [-workload terasort]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dataproxy/pkg/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetcheck: ")
	url := flag.String("url", "http://127.0.0.1:8090", "target base URL (router or single replica)")
	mode := flag.String("mode", "smoke", "check mode: smoke, mix or postkill")
	backendsFlag := flag.String("backends", "", "optional name=url list of replicas for fleet-wide metric assertions")
	n := flag.Int("n", 6, "distinct settings in the mix/postkill batch")
	workload := flag.String("workload", "terasort", "workload to exercise")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	backends, err := parseBackends(*backendsFlag)
	if err != nil {
		log.Fatal(err)
	}
	c := client.New(*url)
	switch *mode {
	case "smoke":
		err = smoke(ctx, c, *workload)
	case "mix":
		err = mix(ctx, c, backends, *workload, *n)
	case "postkill":
		err = postkill(ctx, c, backends, *workload, *n)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: ok", *mode)
}

// namedBackend pairs a replica's shard name with its base URL.
type namedBackend struct {
	name string
	url  string
}

// parseBackends parses the -backends flag: comma-separated name=url pairs.
func parseBackends(spec string) ([]namedBackend, error) {
	if spec == "" {
		return nil, nil
	}
	var out []namedBackend
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("-backends entry %q is not name=url", part)
		}
		out = append(out, namedBackend{name: name, url: strings.TrimRight(url, "/")})
	}
	return out, nil
}

// mixSettings builds n distinct settings plus one deliberate duplicate of
// the first, so every mix exercises batch-internal deduplication too.  The
// settings vary chunkSize so each lands in its own trace group — that keeps
// proxyd_run_executed_total (which counts trace groups, not requests) equal
// to the number of distinct settings simulated.
func mixSettings(n int) []map[string]float64 {
	settings := make([]map[string]float64, 0, n+1)
	for i := 0; i < n; i++ {
		settings = append(settings, map[string]float64{"chunkSize": 1 + float64(i)*0.1})
	}
	return append(settings, map[string]float64{"chunkSize": 1})
}

// executedTotal sums proxyd_run_executed_total across the given replicas.
func executedTotal(ctx context.Context, backends []namedBackend) (float64, error) {
	var sum float64
	for _, b := range backends {
		text, err := client.New(b.url).MetricsText(ctx)
		if err != nil {
			return 0, fmt.Errorf("reading %s metrics: %w", b.name, err)
		}
		v, ok := client.ParseMetric(text, "proxyd_run_executed_total")
		if !ok {
			return 0, fmt.Errorf("%s metrics lack proxyd_run_executed_total", b.name)
		}
		sum += v
	}
	return sum, nil
}

// smoke checks the minimum contract of a freshly booted target.
func smoke(ctx context.Context, c *client.Client, workload string) error {
	if err := c.Healthy(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if err := c.Ready(ctx); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	wl, err := c.Workloads(ctx)
	if err != nil || len(wl) == 0 {
		return fmt.Errorf("workloads: %d entries, err %v", len(wl), err)
	}
	run, err := c.Run(ctx, client.RunRequest{Workload: workload})
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if run.RuntimeSeconds <= 0 {
		return fmt.Errorf("run returned non-positive runtime %g", run.RuntimeSeconds)
	}
	again, err := c.Run(ctx, client.RunRequest{Workload: workload})
	if err != nil {
		return fmt.Errorf("repeat run: %w", err)
	}
	if !again.Coalesced || again.RuntimeSeconds != run.RuntimeSeconds {
		return fmt.Errorf("repeat run not coalesced (coalesced=%v, %g vs %g)",
			again.Coalesced, again.RuntimeSeconds, run.RuntimeSeconds)
	}
	// Misdirected requests must come back as typed envelopes, not raw text.
	if _, err := c.Run(ctx, client.RunRequest{Workload: "no-such-workload"}); err != nil {
		if ae, ok := client.AsAPIError(err); !ok || ae.Code != client.CodeBadRequest {
			return fmt.Errorf("unknown workload should be bad_request, got %v", err)
		}
	} else {
		return fmt.Errorf("unknown workload was accepted")
	}
	if _, err := c.Job(ctx, "nosuch.job-0"); !client.IsNotFound(err) {
		return fmt.Errorf("unknown job should be not_found, got %v", err)
	}
	return nil
}

// mix drives the cold/warm workload mix and, when backends are known,
// asserts the fleet never simulated a setting twice.
func mix(ctx context.Context, c *client.Client, backends []namedBackend, workload string, n int) error {
	settings := mixSettings(n)
	batch, err := c.RunBatch(ctx, client.RunRequest{Workload: workload, Settings: settings})
	if err != nil {
		return fmt.Errorf("cold batch: %w", err)
	}
	if len(batch.Results) != len(settings) {
		return fmt.Errorf("cold batch returned %d results for %d settings", len(batch.Results), len(settings))
	}
	if last := batch.Results[len(settings)-1]; !last.Coalesced {
		return fmt.Errorf("duplicate setting inside the batch was re-simulated")
	}
	// Warm singles pin request order: position i answers settings[i].
	for i, s := range settings {
		single, err := c.Run(ctx, client.RunRequest{Workload: workload, Setting: s})
		if err != nil {
			return fmt.Errorf("warm single %d: %w", i, err)
		}
		if !single.Coalesced {
			return fmt.Errorf("warm single %d was re-simulated", i)
		}
		if single.RuntimeSeconds != batch.Results[i].RuntimeSeconds {
			return fmt.Errorf("batch order broken at %d: batch %g vs single %g",
				i, batch.Results[i].RuntimeSeconds, single.RuntimeSeconds)
		}
	}
	again, err := c.RunBatch(ctx, client.RunRequest{Workload: workload, Settings: settings})
	if err != nil {
		return fmt.Errorf("warm batch: %w", err)
	}
	for i, res := range again.Results {
		if !res.Coalesced {
			return fmt.Errorf("warm batch result %d was re-simulated", i)
		}
	}
	if len(backends) > 0 {
		total, err := executedTotal(ctx, backends)
		if err != nil {
			return err
		}
		if total != float64(n) {
			return fmt.Errorf("fleet executed %g simulations for %d distinct settings (duplicate work)", total, n)
		}
	}
	// A fast self-targeted tune job must route, run and converge.
	mv, err := batch.Results[0].MetricValues()
	if err != nil {
		return err
	}
	tr, err := c.Tune(ctx, client.TuneRequest{
		Workload:      workload,
		MaxIterations: 1,
		Metrics:       []string{"IPC", "MIPS"},
		Parameters:    []string{"dataSize"},
		ImpactFactors: []float64{1.25},
		Target:        map[string]float64{"IPC": mv["IPC"], "MIPS": mv["MIPS"]},
	})
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	job, err := c.PollJob(ctx, tr.JobID, 100*time.Millisecond)
	if err != nil {
		return fmt.Errorf("polling %s: %w", tr.JobID, err)
	}
	if job.State != client.JobDone || job.Result == nil || !job.Result.Converged {
		return fmt.Errorf("tune job %s finished %s (result %+v)", tr.JobID, job.State, job.Result)
	}
	fmt.Fprintf(os.Stderr, "fleetcheck: mix: %d settings, tune job %s converged\n", len(settings), tr.JobID)
	return nil
}

// postkill asserts availability after a replica died: the whole mix still
// answers with no 5xx, and the survivors (when given) execute zero new
// simulations because gossip already spread the dead shard's entries.
func postkill(ctx context.Context, c *client.Client, backends []namedBackend, workload string, n int) error {
	if err := c.Ready(ctx); err != nil {
		return fmt.Errorf("router should stay ready with survivors: %w", err)
	}
	var before float64
	var err error
	if len(backends) > 0 {
		if before, err = executedTotal(ctx, backends); err != nil {
			return err
		}
	}
	settings := mixSettings(n)
	batch, err := c.RunBatch(ctx, client.RunRequest{Workload: workload, Settings: settings})
	if err != nil {
		return fmt.Errorf("post-kill batch: %w", err)
	}
	if len(batch.Results) != len(settings) {
		return fmt.Errorf("post-kill batch returned %d results for %d settings", len(batch.Results), len(settings))
	}
	for i, s := range settings {
		single, err := c.Run(ctx, client.RunRequest{Workload: workload, Setting: s})
		if err != nil {
			return fmt.Errorf("post-kill single %d: %w", i, err)
		}
		if single.RuntimeSeconds != batch.Results[i].RuntimeSeconds {
			return fmt.Errorf("post-kill order broken at %d", i)
		}
	}
	if len(backends) > 0 {
		after, err := executedTotal(ctx, backends)
		if err != nil {
			return err
		}
		if after != before {
			return fmt.Errorf("survivors executed %g new simulations; gossip should have made every key warm", after-before)
		}
	}
	return nil
}
