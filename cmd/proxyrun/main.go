// Command proxyrun executes one of the generated proxy benchmarks on a
// single simulated node and prints its virtual runtime and metric vector.
//
// Usage:
//
//	proxyrun -workload terasort [-arch westmere|haswell] [-datasize 2.0] [-numtasks 1.5]
//	proxyrun -workload terasort -settings "dataSize=0.5;dataSize=1,numTasks=2;dataSize=2"
//
// The -datasize/-chunksize/-numtasks/-weight flags are multiplicative
// factors over the proxy's base parameters (Table I).  -settings sweeps
// several settings in one batched evaluation: entries are separated by ';',
// each entry is a comma-separated list of name=factor pairs (an empty entry
// selects the default setting), and all entries execute as one trace-sharing
// core.RunBatch sweep instead of independent runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"dataproxy/internal/arch"
	"dataproxy/internal/core"
	"dataproxy/internal/perf"
	"dataproxy/internal/proxy"
	"dataproxy/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proxyrun: ")
	workload := flag.String("workload", "terasort", "workload to proxy: terasort, kmeans, pagerank, alexnet, inception")
	archName := flag.String("arch", "westmere", "processor profile: westmere or haswell")
	dataSize := flag.Float64("datasize", 1, "dataSize factor")
	chunkSize := flag.Float64("chunksize", 1, "chunkSize factor")
	numTasks := flag.Float64("numtasks", 1, "numTasks factor")
	weight := flag.Float64("weight", 1, "weight factor")
	settingsSpec := flag.String("settings", "", "batched sweep: ';'-separated settings, each 'name=factor,name=factor' (overrides the single-setting flags)")
	flag.Parse()

	b, err := proxy.ForWorkload(*workload)
	if err != nil {
		log.Fatal(err)
	}
	profile, ok := arch.Profiles()[*archName]
	if !ok {
		log.Fatalf("unknown architecture %q (want westmere or haswell)", *archName)
	}
	cluster, err := sim.NewCluster(sim.SingleNode(profile, 0))
	if err != nil {
		log.Fatal(err)
	}

	if *settingsSpec != "" {
		settings, err := core.ParseSettings(*settingsSpec)
		if err != nil {
			log.Fatal(err)
		}
		reports, err := core.RunBatch(sim.NewClusterPool(cluster), b, settings)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %s (%d settings, batched)\n", b.Name, profile.Name, len(settings))
		for i, rep := range reports {
			fmt.Printf("[%d] %s\n", i, formatSetting(settings[i]))
			printReport(rep)
		}
		return
	}

	setting := core.Setting{
		"dataSize":  *dataSize,
		"chunkSize": *chunkSize,
		"numTasks":  *numTasks,
		"weight":    *weight,
	}
	rep, err := core.Run(cluster, b, setting)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s\n", b.Name, profile.Name)
	printReport(rep)
}

// formatSetting renders a setting's non-default factors in the stable
// core.ParameterNames order ("defaults" when every factor is 1).
func formatSetting(s core.Setting) string {
	var sb strings.Builder
	for _, name := range core.ParameterNames {
		if f := s.Get(name); f != 1 {
			if sb.Len() > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s=%g", name, f)
		}
	}
	if sb.Len() == 0 {
		return "defaults"
	}
	return sb.String()
}

func printReport(rep sim.Report) {
	fmt.Printf("  virtual runtime: %.2f s\n", rep.Runtime)
	fmt.Printf("  instructions:    %d\n", rep.Aggregate.Instructions())
	fmt.Println("  metric vector:")
	for _, name := range perf.MetricNames {
		fmt.Printf("    %-12s %.6g\n", name, rep.Metrics.Get(name))
	}
}
