// Command proxyrun executes one of the generated proxy benchmarks on a
// single simulated node and prints its virtual runtime and metric vector.
//
// Usage:
//
//	proxyrun -workload terasort [-arch westmere|haswell] [-datasize 2.0] [-numtasks 1.5]
//
// The -datasize/-chunksize/-numtasks/-weight flags are multiplicative
// factors over the proxy's base parameters (Table I).
package main

import (
	"flag"
	"fmt"
	"log"

	"dataproxy/internal/arch"
	"dataproxy/internal/core"
	"dataproxy/internal/perf"
	"dataproxy/internal/proxy"
	"dataproxy/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proxyrun: ")
	workload := flag.String("workload", "terasort", "workload to proxy: terasort, kmeans, pagerank, alexnet, inception")
	archName := flag.String("arch", "westmere", "processor profile: westmere or haswell")
	dataSize := flag.Float64("datasize", 1, "dataSize factor")
	chunkSize := flag.Float64("chunksize", 1, "chunkSize factor")
	numTasks := flag.Float64("numtasks", 1, "numTasks factor")
	weight := flag.Float64("weight", 1, "weight factor")
	flag.Parse()

	b, err := proxy.ForWorkload(*workload)
	if err != nil {
		log.Fatal(err)
	}
	profile, ok := arch.Profiles()[*archName]
	if !ok {
		log.Fatalf("unknown architecture %q (want westmere or haswell)", *archName)
	}
	cluster, err := sim.NewCluster(sim.SingleNode(profile, 0))
	if err != nil {
		log.Fatal(err)
	}
	setting := core.Setting{
		"dataSize":  *dataSize,
		"chunkSize": *chunkSize,
		"numTasks":  *numTasks,
		"weight":    *weight,
	}
	rep, err := core.Run(cluster, b, setting)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s\n", b.Name, profile.Name)
	fmt.Printf("  virtual runtime: %.2f s\n", rep.Runtime)
	fmt.Printf("  instructions:    %d\n", rep.Aggregate.Instructions())
	fmt.Println("  metric vector:")
	for _, name := range perf.MetricNames {
		fmt.Printf("    %-12s %.6g\n", name, rep.Metrics.Get(name))
	}
}
