package main

import (
	"io"
	"strings"
	"testing"
)

func bench(name string, ns float64, allocs float64) result {
	return result{
		Package: "dataproxy/internal/arch",
		Name:    name,
		NsPerOp: ns,
		Metrics: map[string]float64{"allocs/op": allocs},
	}
}

func TestCompareWithinToleranceAndNewBenchPasses(t *testing.T) {
	base := summary{Benchmarks: []result{bench("BenchmarkCacheAccessRun", 1000, 0)}}
	fresh := summary{Benchmarks: []result{
		bench("BenchmarkCacheAccessRun", 1200, 0),
		bench("BenchmarkBrandNew", 50, 3),
	}}
	if failures := compare(io.Discard, base, fresh, 0.25); len(failures) != 0 {
		t.Fatalf("within-tolerance comparison failed: %v", failures)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := summary{Benchmarks: []result{bench("BenchmarkCacheAccessRun", 1000, 0)}}
	fresh := summary{Benchmarks: []result{bench("BenchmarkCacheAccessRun", 2000, 0)}}
	failures := compare(io.Discard, base, fresh, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "regressed") {
		t.Fatalf("2x slowdown must fail the gate, got %v", failures)
	}
}

func TestCompareFailsOnNewAllocsAndMissingBench(t *testing.T) {
	base := summary{Benchmarks: []result{
		bench("BenchmarkZeroAlloc", 1000, 0),
		bench("BenchmarkGone", 500, 0),
	}}
	fresh := summary{Benchmarks: []result{bench("BenchmarkZeroAlloc", 1000, 2)}}
	failures := compare(io.Discard, base, fresh, 0.25)
	if len(failures) != 2 {
		t.Fatalf("want alloc + missing failures, got %v", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "allocates") || !strings.Contains(joined, "missing") {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestReadSummaryParsesGoTestJSON(t *testing.T) {
	stream := `{"Action":"output","Package":"p","Test":"BenchmarkX","Output":"BenchmarkX-8  100  123 ns/op  0 B/op  0 allocs/op\n"}`
	sum, err := readSummary(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 1 || sum.Benchmarks[0].NsPerOp != 123 {
		t.Fatalf("parsed %+v", sum.Benchmarks)
	}
	if sum.Benchmarks[0].Name != "BenchmarkX" {
		t.Fatalf("name %q: the GOMAXPROCS suffix must be stripped so a baseline from a 1-CPU host matches a multi-core run", sum.Benchmarks[0].Name)
	}
}

func TestStripProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkCacheAccessRun-4":       "BenchmarkCacheAccessRun",
		"BenchmarkExecLoad/hot/perword-8": "BenchmarkExecLoad/hot/perword",
		"BenchmarkCacheAccessRun":         "BenchmarkCacheAccessRun",
		"BenchmarkTune/sequential":        "BenchmarkTune/sequential",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReadSummaryMergesRepeatedRunsMinNsMaxAllocs(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"p","Test":"BenchmarkX","Output":"BenchmarkX-8  100  200 ns/op  16 B/op  0 allocs/op\n"}`,
		`{"Action":"output","Package":"p","Test":"BenchmarkX","Output":"BenchmarkX-8  100  120 ns/op  16 B/op  2 allocs/op\n"}`,
		`{"Action":"output","Package":"p","Test":"BenchmarkX","Output":"BenchmarkX-8  100  150 ns/op  16 B/op  0 allocs/op\n"}`,
	}, "\n")
	sum, err := readSummary(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 1 {
		t.Fatalf("repeated runs must merge into one entry, got %+v", sum.Benchmarks)
	}
	b := sum.Benchmarks[0]
	if b.NsPerOp != 120 {
		t.Errorf("ns/op %v, want the minimum 120", b.NsPerOp)
	}
	if b.Metrics["allocs/op"] != 2 {
		t.Errorf("allocs/op %v, want the maximum 2 (allocations must not be averaged away)", b.Metrics["allocs/op"])
	}
}
