// Command benchjson converts the stream produced by `go test -json -bench`
// on stdin into a compact JSON summary of the benchmark results on stdout.
// It exists so `make bench-json` can track the cache-engine hot path in a
// machine-readable file (BENCH_cache.json) without any dependency beyond the
// standard library.
//
//	go test -run='^$' -bench='CacheAccess|ExecLoad' -benchmem -json ./... | benchjson > BENCH_cache.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event schema benchjson
// needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// result is one benchmark line in the summary.
type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type summary struct {
	GeneratedBy string   `json:"generated_by"`
	Benchmarks  []result `json:"benchmarks"`
}

func main() {
	sum := summary{GeneratedBy: "make bench-json"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (plain `go test -bench` output)
		}
		if ev.Action != "output" {
			continue
		}
		if r, ok := parseBenchLine(ev.Package, ev.Test, ev.Output); ok {
			sum.Benchmarks = append(sum.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(sum.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one benchmark result output line; ok is false for
// any other output.  The line is either the combined
// `Benchmark<Name>-P  N  V unit  [V unit ...]` form, or — when the harness
// prints the name on its own line (e.g. GOMAXPROCS=1) — just
// `N  V unit  [V unit ...]` with the name carried by the event's Test field.
func parseBenchLine(pkg, test, line string) (result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	name := ""
	switch {
	case len(fields) >= 4 && strings.HasPrefix(fields[0], "Benchmark"):
		name = fields[0]
		fields = fields[1:]
	case len(fields) >= 3 && strings.HasPrefix(test, "Benchmark"):
		name = test
	default:
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Package: pkg, Name: name, Iterations: iters}
	// The remainder is value/unit pairs: "7616 ns/op", "16 B/op", ...
	seen := false
	for i := 1; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
			seen = true
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, seen
}
