// Command benchjson converts the stream produced by `go test -json -bench`
// on stdin into a compact JSON summary of the benchmark results on stdout.
// It exists so `make bench-json` can track the cache-engine hot path in a
// machine-readable file (BENCH_cache.json) without any dependency beyond the
// standard library.
//
//	go test -run='^$' -bench='CacheAccess|ExecLoad' -benchmem -json ./... | benchjson > BENCH_cache.json
//
// With -compare it becomes the bench regression gate of `make bench-check`:
// the fresh stream on stdin is diffed against the committed baseline and the
// command fails when a benchmark regresses by more than -tolerance in ns/op,
// when a zero-alloc benchmark gains allocations, or when a baseline
// benchmark is missing from the fresh run:
//
//	go test -run='^$' -bench=... -benchmem -json ./... | benchjson -compare BENCH_cache.json -tolerance 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event schema benchjson
// needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// result is one benchmark line in the summary.
type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type summary struct {
	GeneratedBy string   `json:"generated_by"`
	Benchmarks  []result `json:"benchmarks"`
}

func main() {
	compareFile := flag.String("compare", "", "baseline JSON file to diff the fresh stdin results against (bench regression gate)")
	tolerance := flag.Float64("tolerance", 0.25, "accepted fractional ns/op regression in -compare mode (0.25 = 25%)")
	flag.Parse()

	sum, err := readSummary(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *compareFile != "" {
		base, err := loadBaseline(*compareFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		failures := compare(os.Stdout, base, sum, *tolerance)
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s\n", f)
			}
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// readSummary parses a `go test -json -bench` stream into a summary.
// Repeated measurements of one benchmark (`go test -count=N`) are merged
// into a single entry: minimum ns/op (the robust "how fast can this code
// go" estimator, insensitive to scheduler noise) and maximum B/op and
// allocs/op (allocation counts are deterministic, so any observed
// allocation is real and must not be averaged away).
func readSummary(r io.Reader) (summary, error) {
	sum := summary{GeneratedBy: "make bench-json"}
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (plain `go test -bench` output)
		}
		if ev.Action != "output" {
			continue
		}
		res, ok := parseBenchLine(ev.Package, ev.Test, ev.Output)
		if !ok {
			continue
		}
		key := res.Package + "|" + res.Name
		i, seen := index[key]
		if !seen {
			index[key] = len(sum.Benchmarks)
			sum.Benchmarks = append(sum.Benchmarks, res)
			continue
		}
		prev := &sum.Benchmarks[i]
		if res.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = res.NsPerOp
		}
		for unit, v := range res.Metrics {
			if v > prev.Metrics[unit] {
				if prev.Metrics == nil {
					prev.Metrics = map[string]float64{}
				}
				prev.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return sum, fmt.Errorf("reading stdin: %w", err)
	}
	if len(sum.Benchmarks) == 0 {
		return sum, fmt.Errorf("no benchmark results found on stdin")
	}
	return sum, nil
}

// stripProcSuffix removes the trailing `-P` GOMAXPROCS marker go test
// appends to benchmark names ("BenchmarkCacheAccessRun-4" ->
// "BenchmarkCacheAccessRun").  Sub-benchmark separators are untouched.
// Corollary: tracked benchmark (or sub-benchmark) names must not themselves
// end in "-<digits>" — at GOMAXPROCS=1 go test omits its marker and such a
// name would be over-stripped; prefer "size=1024" over "size-1024".
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// loadBaseline reads a previously committed summary (BENCH_cache.json).
func loadBaseline(path string) (summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return summary{}, err
	}
	var sum summary
	if err := json.Unmarshal(data, &sum); err != nil {
		return summary{}, fmt.Errorf("decoding baseline %s: %w", path, err)
	}
	return sum, nil
}

// compare diffs the fresh results against the baseline and returns the gate
// failures: ns/op regressions beyond the tolerance, new allocations on
// zero-alloc benchmarks, and baseline benchmarks missing from the fresh run.
// Fresh benchmarks absent from the baseline are reported but not gated, so
// adding a benchmark does not require refreshing the baseline in the same
// change.  A comparison table is written to w.
func compare(w io.Writer, base, fresh summary, tolerance float64) []string {
	type key struct{ pkg, name string }
	freshBy := make(map[key]result, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		freshBy[key{r.Package, r.Name}] = r
	}

	var failures []string
	fmt.Fprintf(w, "%-55s %12s %12s %8s\n", "benchmark (vs baseline)", "base ns/op", "fresh ns/op", "delta")
	for _, b := range base.Benchmarks {
		f, ok := freshBy[key{b.Package, b.Name}]
		if !ok {
			fmt.Fprintf(w, "%-55s %12.0f %12s %8s\n", b.Name, b.NsPerOp, "-", "gone")
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the fresh run", b.Name))
			continue
		}
		delete(freshBy, key{b.Package, b.Name})
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = f.NsPerOp/b.NsPerOp - 1
		}
		fmt.Fprintf(w, "%-55s %12.0f %12.0f %+7.1f%%\n", b.Name, b.NsPerOp, f.NsPerOp, delta*100)
		if delta > tolerance {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
				b.Name, delta*100, b.NsPerOp, f.NsPerOp, tolerance*100))
		}
		if b.Metrics["allocs/op"] == 0 && f.Metrics["allocs/op"] > 0 {
			failures = append(failures, fmt.Sprintf("%s: zero-alloc benchmark now allocates %.0f allocs/op",
				b.Name, f.Metrics["allocs/op"]))
		}
	}
	for _, r := range fresh.Benchmarks {
		if _, ok := freshBy[key{r.Package, r.Name}]; ok {
			fmt.Fprintf(w, "%-55s %12s %12.0f %8s\n", r.Name, "-", r.NsPerOp, "new")
		}
	}
	return failures
}

// parseBenchLine parses one benchmark result output line; ok is false for
// any other output.  The line is either the combined
// `Benchmark<Name>-P  N  V unit  [V unit ...]` form, or — when the harness
// prints the name on its own line (e.g. GOMAXPROCS=1) — just
// `N  V unit  [V unit ...]` with the name carried by the event's Test field.
// The `-P` GOMAXPROCS suffix is stripped from the name, so baselines
// recorded on one host compare cleanly against runs on a host with a
// different core count.
func parseBenchLine(pkg, test, line string) (result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	name := ""
	switch {
	case len(fields) >= 4 && strings.HasPrefix(fields[0], "Benchmark"):
		name = stripProcSuffix(fields[0])
		fields = fields[1:]
	case len(fields) >= 3 && strings.HasPrefix(test, "Benchmark"):
		name = stripProcSuffix(test)
	default:
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Package: pkg, Name: name, Iterations: iters}
	// The remainder is value/unit pairs: "7616 ns/op", "16 B/op", ...
	seen := false
	for i := 1; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
			seen = true
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, seen
}
