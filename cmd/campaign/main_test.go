package main

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"dataproxy/internal/campaign"
)

// testCfg is a campaign small enough for unit tests: one workload, one
// profile, four steps of tiny traces.
func testCfg(seed uint64) campaign.Config {
	return campaign.Config{
		Seed:        seed,
		Steps:       4,
		Workloads:   []string{"terasort"},
		Profiles:    []string{"westmere"},
		MaxSettings: 2,
		TraceTasks:  2,
		TraceOps:    60,
	}
}

// TestRunOneIsDeterministic drives the CLI's single-campaign path twice and
// compares the report bytes — the same property the CI e2e checks across
// processes.
func TestRunOneIsDeterministic(t *testing.T) {
	a, err := run(testCfg(7), 1, "", "", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(testCfg(7), 1, "", "", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same seed produced different report bytes")
	}
}

// TestExportThenResumeMatchesStraightRun checkpoints mid-run via the CLI
// path, resumes from the file, and requires the bit-identical final report.
func TestExportThenResumeMatchesStraightRun(t *testing.T) {
	straight, err := run(testCfg(9), 1, "", "", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "camp.snap")
	exported, err := run(testCfg(9), 1, "", "", snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight, exported) {
		t.Fatal("taking a snapshot perturbed the report")
	}
	resumed, err := run(campaign.Config{}, 1, snap, "", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight, resumed) {
		t.Fatal("resumed report diverges from the uninterrupted run")
	}
}

// TestVerifyWorkersPath drives the -verify-workers dispatch.
func TestVerifyWorkersPath(t *testing.T) {
	if _, err := run(testCfg(7), 1, "", "1,2", "", -1); err != nil {
		t.Fatal(err)
	}
	if _, err := run(testCfg(7), 1, "", "1,zero", "", -1); err == nil {
		t.Fatal("bad worker list accepted")
	}
}

// TestSweepEmitsOneLinePerSeedDeterministically drives the multi-seed path.
func TestSweepEmitsOneLinePerSeedDeterministically(t *testing.T) {
	a, err := run(testCfg(1), 3, "", "", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(a, []byte("\n")); n != 3 {
		t.Fatalf("sweep of 3 seeds emitted %d lines:\n%s", n, a)
	}
	b, err := run(testCfg(1), 3, "", "", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("sweep digests are not reproducible")
	}
}

// TestResumeRejectsMissingFile covers the resume error path.
func TestResumeRejectsMissingFile(t *testing.T) {
	if _, err := run(campaign.Config{}, 1, filepath.Join(t.TempDir(), "nope.snap"), "", "", -1); err == nil {
		t.Fatal("resume from a missing snapshot should fail")
	}
}

// TestFlagHelpers pins the list-parsing helpers.
func TestFlagHelpers(t *testing.T) {
	if got := splitList(" a, b ,,c "); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("splitList: %#v", got)
	}
	if got := splitList(""); got != nil {
		t.Fatalf("splitList(\"\") = %#v, want nil", got)
	}
	counts, err := parseInts(" 1, 2 ,8")
	if err != nil || !reflect.DeepEqual(counts, []int{1, 2, 8}) {
		t.Fatalf("parseInts: %v %v", counts, err)
	}
	for _, bad := range []string{"0", "-1", "x", "1,,2"} {
		if _, err := parseInts(bad); err == nil {
			t.Fatalf("parseInts(%q) accepted", bad)
		}
	}
}
