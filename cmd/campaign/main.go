// Command campaign runs multi-seed randomized simulation campaigns — the
// qualification harness of internal/campaign — from the command line, in
// the shapes CI consumes:
//
//	campaign -seed 1                        # one campaign, report on stdout
//	campaign -seed 1 -seeds 25 -invariants  # multi-seed sweep, armed gates
//	campaign -seed 1 -verify-workers 1,2,8  # nondeterminism check
//	campaign -seed 1 -export s.snap -export-after 3   # checkpoint mid-run
//	campaign -resume s.snap                 # continue from the checkpoint
//
// Output is exactly the deterministic report bytes (JSON), so two
// invocations with the same seed can be compared with cmp(1) — which is
// how the CI nondeterminism and import/export end-to-end checks work.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dataproxy/internal/campaign"
	"dataproxy/internal/parallel"
	"dataproxy/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	var (
		seed        = flag.Uint64("seed", 1, "campaign seed")
		seeds       = flag.Int("seeds", 1, "number of consecutive seeds to run, starting at -seed")
		steps       = flag.Int("steps", 0, "steps per campaign (0 = default)")
		workers     = flag.Int("workers", 0, "host worker count (0 = all cores)")
		profiles    = flag.String("profiles", "", "comma-separated architecture profiles (default westmere,haswell)")
		workloads   = flag.String("workloads", "", "comma-separated proxy workloads (default terasort,kmeans,pagerank)")
		maxSettings = flag.Int("max-settings", 0, "max settings per eval step (0 = default)")
		traceTasks  = flag.Int("trace-tasks", 0, "tasks per trace step (0 = default)")
		traceOps    = flag.Int("trace-ops", 0, "operations per trace task (0 = default)")
		out         = flag.String("out", "", "write the report to this file instead of stdout")
		exportPath  = flag.String("export", "", "write a mid-campaign snapshot to this file")
		exportAfter = flag.Int("export-after", -1, "take the -export snapshot after this many steps (default: half)")
		resumePath  = flag.String("resume", "", "resume from this snapshot instead of starting fresh")
		verify      = flag.String("verify-workers", "", "comma-separated worker counts: run the campaign once per count and fail unless reports are byte-identical")
		invariants  = flag.Bool("invariants", false, "arm the per-measurement model-invariant checks")
	)
	flag.Parse()

	if *invariants {
		perf.SetInvariantChecks(true)
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	cfg := campaign.Config{
		Seed:        *seed,
		Steps:       *steps,
		Workloads:   splitList(*workloads),
		Profiles:    splitList(*profiles),
		MaxSettings: *maxSettings,
		TraceTasks:  *traceTasks,
		TraceOps:    *traceOps,
	}

	buf, err := run(cfg, *seeds, *resumePath, *verify, *exportPath, *exportAfter)
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}
	os.Stdout.Write(buf)
}

// run dispatches the selected mode and returns the deterministic report
// bytes.
func run(cfg campaign.Config, seeds int, resumePath, verify, exportPath string, exportAfter int) ([]byte, error) {
	switch {
	case resumePath != "":
		r, err := campaign.ResumeFile(resumePath)
		if err != nil {
			return nil, err
		}
		rep, err := r.Run()
		if err != nil {
			return nil, err
		}
		return rep.Encode()
	case verify != "":
		counts, err := parseInts(verify)
		if err != nil {
			return nil, err
		}
		return campaign.VerifyDeterminism(cfg, counts)
	case seeds > 1:
		return runSweep(cfg, seeds)
	default:
		return runOne(cfg, exportPath, exportAfter)
	}
}

// runOne runs a single campaign, optionally checkpointing mid-run.
func runOne(cfg campaign.Config, exportPath string, exportAfter int) ([]byte, error) {
	r, err := campaign.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	if exportPath != "" {
		n := len(r.Instance().Steps)
		if exportAfter < 0 || exportAfter > n {
			exportAfter = n / 2
		}
		for i := 0; i < exportAfter; i++ {
			if err := r.Step(); err != nil {
				return nil, err
			}
		}
		if err := r.WriteSnapshot(exportPath); err != nil {
			return nil, err
		}
	}
	rep, err := r.Run()
	if err != nil {
		return nil, err
	}
	return rep.Encode()
}

// runSweep runs consecutive seeds and emits one digest line per seed plus
// a sweep digest — compact, deterministic, cmp(1)-comparable output for
// the nightly multi-seed job.
func runSweep(cfg campaign.Config, seeds int) ([]byte, error) {
	list := make([]uint64, seeds)
	for i := range list {
		list[i] = cfg.Seed + uint64(i)
	}
	reports, err := campaign.RunSeeds(cfg, list)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for _, rep := range reports {
		digest, err := rep.Digest()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "seed %d steps %d evals %d hits %d %s\n",
			rep.Seed, len(rep.Steps), rep.Evaluations, rep.CacheHits, digest)
	}
	return []byte(sb.String()), nil
}

// splitList splits a comma-separated flag value; empty means default.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
