// Command datagen generates the synthetic data sets used by the workloads
// and proxy benchmarks (gensort-style text records, sparse/dense vectors,
// power-law graphs, image batches) and prints a short summary of their
// properties.  It mirrors the role of gensort and BDGS in the paper's
// experimental setup.
//
// Usage:
//
//	datagen -kind text -records 100000
//	datagen -kind vectors -count 10000 -dim 256 -sparsity 0.9
//	datagen -kind graph -vertices 100000 -degree 16
//	datagen -kind images -count 64 -height 32 -width 32
package main

import (
	"flag"
	"fmt"
	"log"

	"dataproxy/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	kind := flag.String("kind", "text", "data kind: text, vectors, graph, images")
	seed := flag.Int64("seed", 1, "generator seed")
	records := flag.Int("records", 100000, "text: number of 100-byte gensort records")
	count := flag.Int("count", 10000, "vectors/images: element count")
	dim := flag.Int("dim", 256, "vectors: dimensionality")
	sparsity := flag.Float64("sparsity", 0.9, "vectors: fraction of zero elements")
	vertices := flag.Int("vertices", 100000, "graph: vertex count")
	degree := flag.Int("degree", 16, "graph: average out-degree")
	height := flag.Int("height", 32, "images: height")
	width := flag.Int("width", 32, "images: width")
	flag.Parse()

	switch *kind {
	case "text":
		recs, err := datagen.GenerateRecords(datagen.TextConfig{Seed: *seed, Records: *records})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d gensort records (%d bytes)\n", len(recs), datagen.TotalBytes(len(recs)))
		if len(recs) > 0 {
			fmt.Printf("first key: %q\n", recs[0].Key)
		}
	case "vectors":
		vecs, err := datagen.GenerateVectors(datagen.VectorConfig{Seed: *seed, Count: *count, Dim: *dim, Sparsity: *sparsity})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d vectors of dimension %d (%.1f%% measured sparsity)\n",
			len(vecs), *dim, datagen.MeasureSparsity(vecs)*100)
	case "graph":
		g, err := datagen.GeneratePowerLawGraph(datagen.GraphConfig{Seed: *seed, Vertices: *vertices, AvgDegree: *degree})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated graph with %d vertices and %d edges (max out-degree %d)\n",
			g.NumVertices(), g.NumEdges(), g.MaxOutDegree())
		fmt.Printf("in-degree histogram (10 buckets): %v\n", g.DegreeHistogram(10))
	case "images":
		imgs, err := datagen.GenerateImages(datagen.ImageConfig{Seed: *seed, Count: *count, Channels: 3, Height: *height, Width: *width})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d images of %dx%dx3 (%d bytes)\n", len(imgs), *height, *width,
			len(imgs)*len(imgs[0])*4)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}
