package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dataproxy/pkg/client"
)

func TestSettingUniverseSpansGroups(t *testing.T) {
	universe := settingUniverse(3, 4)
	if len(universe) != 12 {
		t.Fatalf("universe holds %d settings, want 12", len(universe))
	}
	chunks := map[float64]bool{}
	for _, s := range universe {
		chunks[s["chunkSize"]] = true
	}
	if len(chunks) != 3 {
		t.Fatalf("universe spans %d chunkSize values, want 3 trace groups", len(chunks))
	}
	// Rank order cycles groups first: the three hottest settings must all
	// sit in different trace groups.
	head := map[float64]bool{}
	for _, s := range universe[:3] {
		head[s["chunkSize"]] = true
	}
	if len(head) != 3 {
		t.Fatalf("hottest 3 settings span %d groups, want 3", len(head))
	}
}

func TestAggregateRecordAndPercentiles(t *testing.T) {
	agg := &aggregate{}
	for i := 1; i <= 100; i++ {
		agg.record(time.Duration(i)*time.Millisecond, &client.RunResponse{Coalesced: i%2 == 0}, nil)
	}
	agg.record(0, nil, &client.APIError{Code: client.CodeShed, Status: 429})
	agg.record(0, nil, fmt.Errorf("boom"))
	if agg.sent != 102 || agg.ok != 100 || agg.shed != 1 || agg.errors != 1 || agg.warmHits != 50 {
		t.Fatalf("counts sent=%d ok=%d shed=%d errors=%d warm=%d", agg.sent, agg.ok, agg.shed, agg.errors, agg.warmHits)
	}
	if p50 := agg.percentile(0.50); p50 != 50*time.Millisecond {
		t.Fatalf("p50 = %s, want 50ms", p50)
	}
	if p99 := agg.percentile(0.99); p99 != 99*time.Millisecond {
		t.Fatalf("p99 = %s, want 99ms", p99)
	}
	if (&aggregate{}).percentile(0.99) != 0 {
		t.Fatal("empty aggregate percentile should be 0")
	}
}

// stubServer answers the minimal /v1 + /metrics surface loadgen touches,
// counting run requests so the load loop's volume is observable.
func stubServer(t *testing.T, runs *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "proxyd_run_executed_total %d\n", runs.Load())
		fmt.Fprintf(w, "proxyd_run_coalesced_total 7\n")
		fmt.Fprintf(w, "proxyd_run_shed_total 0\n")
		fmt.Fprintf(w, "proxyd_coalesce_window_batches_total 3\n")
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		runs.Add(1)
		fmt.Fprint(w, `{"workload":"terasort","arch":"westmere","runtime_seconds":0.5,"coalesced":true,"metrics":{}}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunLoadDrivesBursts(t *testing.T) {
	var runs atomic.Int64
	ts := stubServer(t, &runs)
	c := client.New(ts.URL, client.WithRetries(0))
	universe := settingUniverse(2, 2)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(universe)-1))

	agg := runLoad(context.Background(), c, "terasort", universe, zipf, rng,
		150*time.Millisecond, 4, time.Millisecond)
	if agg.sent == 0 || agg.sent%4 != 0 {
		t.Fatalf("sent %d requests, want a positive multiple of the burst size", agg.sent)
	}
	if int64(agg.sent) != runs.Load() {
		t.Fatalf("client sent %d but server saw %d", agg.sent, runs.Load())
	}
	if agg.ok != agg.sent || agg.warmHits != agg.sent {
		t.Fatalf("ok=%d warm=%d, want all %d", agg.ok, agg.warmHits, agg.sent)
	}
}

func TestServerCountersAndReport(t *testing.T) {
	var runs atomic.Int64
	runs.Store(12)
	ts := stubServer(t, &runs)
	c := client.New(ts.URL, client.WithRetries(0))
	ctx := context.Background()

	before, err := serverCounters(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if before.executed != 12 || before.coalesced != 7 || before.shed != 0 || before.windowBatches != 3 {
		t.Fatalf("counters %+v", before)
	}

	out := filepath.Join(t.TempDir(), "deltas.txt")
	t.Setenv("LOADGEN_METRICS_OUT", out)
	agg := &aggregate{}
	agg.record(time.Millisecond, &client.RunResponse{Coalesced: true}, nil)
	report(agg, counters{executed: 2}, counters{executed: 14, coalesced: 7, windowBatches: 3}, time.Second)
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := "executed 12\ncoalesced 7\nshed 0\nwindow_batches 3\n"
	if string(data) != want {
		t.Fatalf("deltas file:\n%s\nwant:\n%s", data, want)
	}
}
