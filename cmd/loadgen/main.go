// Command loadgen drives a running proxyd (or proxyrouter) with a traffic
// shape the serving layer actually sees in production: bursts of concurrent
// requests whose settings follow a zipfian popularity curve, opening with a
// cold phase (every setting fresh, cross-request coalescing does the work)
// and settling into a warm phase (popular settings answered from the result
// cache).  It reports client-side latency percentiles alongside the server's
// executed/coalesced/shed counter deltas, so a soak run can assert both that
// coalescing engaged and that tail latency stayed bounded.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-duration 15s] [-burst 8] [-gap 5ms]
//	        [-groups 2] [-per-group 4] [-zipf-s 1.3] [-seed 1]
//	        [-workload terasort] [-max-p99 0]
//
// The setting universe holds -groups × -per-group entries: chunkSize varies
// across groups (each group is a distinct execution trace, so cold traffic
// costs one simulation per group per sweep) and dataSize varies within a
// group (same trace, different extrapolation).  -max-p99, when positive,
// makes loadgen exit non-zero if the observed p99 exceeds it — that is the
// CI soak gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"dataproxy/pkg/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	url := flag.String("url", "http://127.0.0.1:8080", "target base URL")
	workload := flag.String("workload", "terasort", "workload to exercise")
	duration := flag.Duration("duration", 15*time.Second, "total load duration (first half cold-heavy, second half warm)")
	burst := flag.Int("burst", 8, "concurrent requests per burst")
	gap := flag.Duration("gap", 5*time.Millisecond, "pause between bursts")
	groups := flag.Int("groups", 2, "distinct trace groups in the setting universe (chunkSize variants)")
	perGroup := flag.Int("per-group", 4, "settings per trace group (dataSize variants)")
	zipfS := flag.Float64("zipf-s", 1.3, "zipf skew of setting popularity (>1; larger = more head-heavy)")
	seed := flag.Int64("seed", 1, "PRNG seed for reproducible traffic")
	maxP99 := flag.Duration("max-p99", 0, "exit non-zero if p99 latency exceeds this bound (0 = no gate)")
	flag.Parse()
	if *burst < 1 || *groups < 1 || *perGroup < 1 {
		log.Fatal("-burst, -groups and -per-group must be positive")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration+time.Minute)
	defer cancel()
	// No client-side retries: a shed burst should be counted as shed, not
	// silently retried into the next window.
	c := client.New(*url, client.WithRetries(0))
	if err := c.Ready(ctx); err != nil {
		log.Fatalf("target not ready: %v", err)
	}
	before, err := serverCounters(ctx, c)
	if err != nil {
		log.Fatal(err)
	}

	universe := settingUniverse(*groups, *perGroup)
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(universe)-1))
	agg := runLoad(ctx, c, *workload, universe, zipf, rng, *duration, *burst, *gap)

	after, err := serverCounters(ctx, c)
	if err != nil {
		log.Fatal(err)
	}
	report(agg, before, after, *duration)
	if *maxP99 > 0 {
		if p99 := agg.percentile(0.99); p99 > *maxP99 {
			log.Fatalf("p99 %s exceeds -max-p99 %s", p99, *maxP99)
		}
	}
	if agg.errors > 0 {
		log.Fatalf("%d requests failed with non-shed errors", agg.errors)
	}
}

// settingUniverse builds groups×perGroup settings ordered so that zipf rank 0
// cycles through trace groups first: the hottest settings span every group,
// which keeps cold bursts coalescible across the whole popularity curve.
func settingUniverse(groups, perGroup int) []map[string]float64 {
	out := make([]map[string]float64, 0, groups*perGroup)
	for d := 0; d < perGroup; d++ {
		for g := 0; g < groups; g++ {
			out = append(out, map[string]float64{
				"chunkSize": 1 + float64(g)*0.5,
				"dataSize":  1 + float64(d)*0.1,
			})
		}
	}
	return out
}

// aggregate accumulates per-request observations across all bursts.
type aggregate struct {
	mu        sync.Mutex
	latencies []time.Duration
	sent      int
	ok        int
	warmHits  int
	shed      int
	errors    int
}

// record folds one finished request into the aggregate.
func (a *aggregate) record(lat time.Duration, res *client.RunResponse, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sent++
	switch {
	case err == nil:
		a.ok++
		a.latencies = append(a.latencies, lat)
		if res.Coalesced {
			a.warmHits++
		}
	case client.IsShed(err):
		a.shed++
	default:
		a.errors++
	}
}

// percentile returns the q-quantile (0 < q <= 1) of successful latencies.
func (a *aggregate) percentile(q float64) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(a.latencies))
	copy(sorted, a.latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// runLoad fires bursts until the duration elapses.  Within a burst every
// request draws its setting independently from the zipf curve, so concurrent
// lanes naturally repeat popular settings (warm hits) and fan across trace
// groups (coalescible cold misses).
func runLoad(ctx context.Context, c *client.Client, workload string, universe []map[string]float64,
	zipf *rand.Zipf, rng *rand.Rand, duration time.Duration, burst int, gap time.Duration) *aggregate {
	agg := &aggregate{}
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		picks := make([]map[string]float64, burst)
		for i := range picks {
			picks[i] = universe[zipf.Uint64()]
		}
		var wg sync.WaitGroup
		for _, s := range picks {
			wg.Add(1)
			go func(s map[string]float64) {
				defer wg.Done()
				start := time.Now()
				res, err := c.Run(ctx, client.RunRequest{Workload: workload, Setting: s})
				agg.record(time.Since(start), res, err)
			}(s)
		}
		wg.Wait()
		if gap > 0 {
			// Jitter the inter-burst gap so bursts do not phase-lock with
			// the server's collection window.
			time.Sleep(gap + time.Duration(rng.Int63n(int64(gap)+1)))
		}
	}
	return agg
}

// counters is the slice of server-side /metrics the load report cares about.
type counters struct {
	executed, coalesced, shed, windowBatches float64
}

// serverCounters scrapes the run counters from the target's /metrics.
func serverCounters(ctx context.Context, c *client.Client) (counters, error) {
	text, err := c.MetricsText(ctx)
	if err != nil {
		return counters{}, fmt.Errorf("scraping metrics: %w", err)
	}
	var out counters
	for _, m := range []struct {
		name string
		dst  *float64
	}{
		{"proxyd_run_executed_total", &out.executed},
		{"proxyd_run_coalesced_total", &out.coalesced},
		{"proxyd_run_shed_total", &out.shed},
		{"proxyd_coalesce_window_batches_total", &out.windowBatches},
	} {
		// The window-batches counter is absent when the target is a router;
		// treat missing metrics as zero rather than failing the run.
		if v, ok := client.ParseMetric(text, m.name); ok {
			*m.dst = v
		}
	}
	return out, nil
}

// report prints the client- and server-side view of the finished run.
func report(agg *aggregate, before, after counters, duration time.Duration) {
	agg.mu.Lock()
	sent, ok, warm, shed, errs := agg.sent, agg.ok, agg.warmHits, agg.shed, agg.errors
	agg.mu.Unlock()
	fmt.Printf("requests: sent=%d ok=%d warm=%d shed=%d errors=%d (%.0f req/s)\n",
		sent, ok, warm, shed, errs, float64(sent)/duration.Seconds())
	fmt.Printf("latency:  p50=%s p90=%s p99=%s\n",
		agg.percentile(0.50), agg.percentile(0.90), agg.percentile(0.99))
	fmt.Printf("server:   executed=%+g coalesced=%+g shed=%+g window_batches=%+g\n",
		after.executed-before.executed, after.coalesced-before.coalesced,
		after.shed-before.shed, after.windowBatches-before.windowBatches)
	if os.Getenv("LOADGEN_METRICS_OUT") != "" {
		// Machine-readable counter deltas for soak scripts that want to
		// assert on them without re-parsing the human report.
		f, err := os.Create(os.Getenv("LOADGEN_METRICS_OUT"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(f, "executed %g\ncoalesced %g\nshed %g\nwindow_batches %g\n",
			after.executed-before.executed, after.coalesced-before.coalesced,
			after.shed-before.shed, after.windowBatches-before.windowBatches)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
