// Command benchharness regenerates every table and figure of the paper's
// evaluation and prints them as text tables.
//
// Usage:
//
//	benchharness [-only table6,figure4,...] [-tune] [-parallel N]
//
// Without -only, all tables and figures are produced.  -tune runs the
// decision-tree auto-tuner for each proxy benchmark against its real
// workload before the accuracy figures are evaluated.  -parallel fixes the
// host worker count of the shared parallel execution engine; the default
// (0) uses every CPU GOMAXPROCS grants.  Results are bit-identical across
// worker counts — the knob only trades host wall-clock for CPU.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dataproxy/internal/experiments"
	"dataproxy/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchharness: ")
	only := flag.String("only", "", "comma-separated subset of experiments (e.g. table6,figure4)")
	tune := flag.Bool("tune", false, "auto-tune each proxy benchmark before the accuracy experiments")
	par := flag.Int("parallel", 0, "host worker count for kernel/suite execution (0 = all CPUs, 1 = sequential)")
	flag.Parse()
	parallel.SetWorkers(*par)

	wanted := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			wanted[strings.ToLower(strings.TrimSpace(name))] = true
		}
	}
	include := func(name string) bool { return len(wanted) == 0 || wanted[name] }

	suite := experiments.NewSuite()
	suite.Tune = *tune

	type experiment struct {
		name string
		run  func() (string, error)
	}
	static := func(s string) func() (string, error) {
		return func() (string, error) { return s, nil }
	}
	list := []experiment{
		{"table1", static(experiments.Table1())},
		{"table2", static(experiments.Table2())},
		{"table3", static(experiments.Table3())},
		{"table4", static(experiments.Table4())},
		{"table5", static(experiments.Table5())},
		{"table6", func() (string, error) {
			rows, err := suite.Table6()
			if err != nil {
				return "", err
			}
			return experiments.FormatRuntimeRows("Table VI: Execution Time on Xeon E5645 (five-node cluster)", rows), nil
		}},
		{"figure4", func() (string, error) {
			rows, err := suite.Figure4()
			if err != nil {
				return "", err
			}
			return experiments.FormatAccuracyRows("Figure 4: System and Micro-architectural Data Accuracy on Xeon E5645", rows), nil
		}},
		{"figure5", func() (string, error) {
			rows, err := suite.Figure5()
			if err != nil {
				return "", err
			}
			return experiments.FormatMixRows(rows), nil
		}},
		{"figure6", func() (string, error) {
			rows, err := suite.Figure6()
			if err != nil {
				return "", err
			}
			return experiments.FormatDiskRows(rows), nil
		}},
		{"figure7", func() (string, error) {
			r, err := suite.Figure7()
			if err != nil {
				return "", err
			}
			return experiments.FormatFigure7(r), nil
		}},
		{"figure8", func() (string, error) {
			r, err := suite.Figure8()
			if err != nil {
				return "", err
			}
			return experiments.FormatAccuracyRows("Figure 8: Proxy K-means Accuracy Using Different Input Data",
				[]experiments.AccuracyRow{r.Sparse, r.Dense}), nil
		}},
		{"table7", func() (string, error) {
			rows, err := suite.Table7()
			if err != nil {
				return "", err
			}
			return experiments.FormatRuntimeRows("Table VII: Execution Time on a New Cluster Configuration (three nodes, 64 GB)", rows), nil
		}},
		{"figure9", func() (string, error) {
			rows, err := suite.Figure9()
			if err != nil {
				return "", err
			}
			return experiments.FormatAccuracyRows("Figure 9: Accuracy on a New Cluster Configuration", rows), nil
		}},
		{"figure10", func() (string, error) {
			rows, err := suite.Figure10()
			if err != nil {
				return "", err
			}
			return experiments.FormatSpeedupRows(rows), nil
		}},
		{"crossarch", func() (string, error) {
			rows, err := suite.TableCrossArch()
			if err != nil {
				return "", err
			}
			return experiments.FormatCrossArchRows(rows), nil
		}},
	}

	known := map[string]bool{}
	for _, e := range list {
		known[e.name] = true
	}
	// Reject typo'd experiment names before spending minutes running the
	// valid ones.
	for name := range wanted {
		if !known[name] {
			log.Fatalf("unknown experiment %q (known: table1-table7, figure4-figure10, crossarch)", name)
		}
	}

	failed := false
	for _, e := range list {
		if !include(e.name) {
			continue
		}
		out, err := e.run()
		if err != nil {
			log.Printf("%s failed: %v", e.name, err)
			failed = true
			continue
		}
		fmt.Println(out)
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
